package core

// White-box tests for the baseline strategies' candidate enumerations.

import (
	"strings"
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logging"
)

// stubFree fabricates a free-run result with fixed per-site counts.
func stubFree(counts map[string]int) *cluster.Result {
	return &cluster.Result{Counts: counts}
}

func stubEngineWithSites() *engine {
	e := stubEngine(Options{})
	return e
}

func TestExhaustiveQueueOrder(t *testing.T) {
	e := stubEngineWithSites()
	q := exhaustiveQueue(&Search{e: e})
	// 6 sites x 3 instances, sites in sorted order, occurrences ascending.
	if len(q) != 18 {
		t.Fatalf("queue length: %d", len(q))
	}
	if q[0].Site > q[3].Site {
		t.Fatal("sites not in sorted order")
	}
	for i := 0; i < 3; i++ {
		if q[i].Occurrence != i+1 {
			t.Fatalf("occurrence order: %+v", q[:3])
		}
	}
}

func TestFATEQueueBreadthFirst(t *testing.T) {
	e := stubEngineWithSites()
	free := stubFree(map[string]int{"a.x": 3, "b.y": 1, "c.z": 2})
	q := fateQueue(&Search{e: e, free: free})
	// Pass 1: a.x#1 b.y#1 c.z#1; pass 2: a.x#2 c.z#2; pass 3: a.x#3.
	want := []inject.Instance{
		{Site: "a.x", Occurrence: 1}, {Site: "b.y", Occurrence: 1}, {Site: "c.z", Occurrence: 1},
		{Site: "a.x", Occurrence: 2}, {Site: "c.z", Occurrence: 2},
		{Site: "a.x", Occurrence: 3},
	}
	if len(q) != len(want) {
		t.Fatalf("queue: %v", q)
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q[%d]=%v, want %v", i, q[i], want[i])
		}
	}
}

func TestCrashTunerQueueFiltersMetaInfo(t *testing.T) {
	e := stubEngineWithSites()
	free := stubFree(map[string]int{
		"zk.election.accept": 5,
		"zk.data.write":      9,
		"dfs.lease.renew":    2,
	})
	q := crashTunerQueue(&Search{e: e, free: free})
	for _, inst := range q {
		if inst.Site == "zk.data.write" {
			t.Fatalf("non-meta-info site in queue: %v", q)
		}
	}
	seen := map[string]bool{}
	for _, inst := range q {
		seen[inst.Site] = true
	}
	if !seen["zk.election.accept"] || !seen["dfs.lease.renew"] {
		t.Fatalf("meta-info sites missing: %v", q)
	}
}

func TestStackTraceQueueUsesFailureLog(t *testing.T) {
	e := stubEngineWithSites()
	e.t.FailureLog = []logging.Entry{
		{Thread: "w", Level: logging.Error, Msg: "IOError at a.hot during sync"},
		{Thread: "w", Level: logging.Info, Msg: "unrelated message"},
	}
	free := stubFree(map[string]int{"a.hot": 3, "b.cold": 4})
	q := stackTraceQueue(&Search{e: e, free: free})
	if len(q) != 3 {
		t.Fatalf("queue: %v", q)
	}
	for _, inst := range q {
		if inst.Site != "a.hot" {
			t.Fatalf("unmentioned site in queue: %v", q)
		}
	}
}

func TestStackTraceQueueInterleavesSites(t *testing.T) {
	e := stubEngineWithSites()
	e.t.FailureLog = []logging.Entry{
		{Thread: "w", Msg: "faults at a.one and b.two observed"},
	}
	free := stubFree(map[string]int{"a.one": 2, "b.two": 2})
	q := stackTraceQueue(&Search{e: e, free: free})
	// Occurrence-major interleave: a#1 b#1 a#2 b#2.
	if len(q) != 4 || q[0].Occurrence != 1 || q[1].Occurrence != 1 || q[2].Occurrence != 2 {
		t.Fatalf("queue: %v", q)
	}
}

func TestRandomQueueIsPermutation(t *testing.T) {
	e := stubEngineWithSites()
	free := stubFree(map[string]int{"a.x": 2, "b.y": 3})
	q := randomQueue(&Search{e: e, free: free})
	if len(q) != 5 {
		t.Fatalf("queue: %v", q)
	}
	seen := map[inject.Instance]bool{}
	for _, inst := range q {
		if seen[inst] {
			t.Fatalf("duplicate: %v", inst)
		}
		seen[inst] = true
	}
	// Deterministic given the seed.
	q2 := randomQueue(&Search{e: e, free: free})
	for i := range q {
		if q[i] != q2[i] {
			t.Fatal("random queue not seed-deterministic")
		}
	}
}

func TestMetaInfoTokensLowercase(t *testing.T) {
	for _, tok := range metaInfoTokens {
		if tok != strings.ToLower(tok) {
			t.Fatalf("token %q not lowercase", tok)
		}
	}
}
