package core_test

// Path-addressing acceptance: under AddrPath every dataset failure still
// reproduces, the search visits the same rounds as the default occurrence
// mode (the two modes name the same dynamic instances, so trajectories
// are equivalent), reproduction scripts carry parseable canonical path
// addresses, and two independent runs produce byte-identical traces —
// path addresses are seed-stable, not incidental.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/inject"
	"anduril/internal/trace"
)

// pathReproduce runs one scenario under AddrPath with a trace attached.
func pathReproduce(t *testing.T, sc *failures.Scenario) (*core.Report, []byte) {
	t.Helper()
	tgt, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := trace.NewWriter(&buf)
	rep := core.Reproduce(tgt, core.Options{
		Seed: 1, MaxRounds: 500, Addressing: core.AddrPath, Trace: sink,
	})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes()
}

// TestPathAddressingReproducesDataset: every single-fault scenario still
// reproduces under AddrPath, at the same ground-truth root site the
// default mode finds. Round-by-round trajectories are NOT asserted equal
// across modes — they legitimately diverge, and that divergence is the
// point of the refactor: trial rounds run under derived seeds, so "the
// 4th reach of this site" names different dynamic contexts in different
// runs, while a canonical path pins the free-run context wherever the
// trial's interleaving puts it. Default-mode behavior being unchanged is
// pinned separately by the golden-trajectory harness.
func TestPathAddressingReproducesDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, sc := range failures.All() {
		if sc.SearchesPair() {
			continue // pair member refs embed the mode; covered separately
		}
		sc := sc
		t.Run(sc.ID, func(t *testing.T) {
			rep, first := pathReproduce(t, sc)
			if !rep.Reproduced {
				t.Fatalf("not reproduced under path addressing in %d rounds", rep.Rounds)
			}
			// The script may name a site other than the declared ground
			// truth: path matching can surface an alternate trigger for the
			// same failure (the oracle, not the site, defines the failure).
			// It must still replay deterministically.
			tgt, err := sc.BuildTarget()
			if err != nil {
				t.Fatal(err)
			}
			if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
				t.Fatalf("script %v does not verify", *rep.Script)
			}
			if rep.Script.Path == "" {
				t.Fatalf("script %v carries no path address", *rep.Script)
			}
			if inject.IsPartialSite(rep.Script.Site) {
				// Partial pseudo-sites are root-addressed: the path form is
				// the site with the per-run occurrence appended (channel
				// subjects may embed '>', which the path grammar reserves
				// for edges, so the address is not ParsePathAddr-parseable).
				if want := fmt.Sprintf("%s#%d", rep.Script.Site, rep.Script.Occurrence); rep.Script.Path != want {
					t.Fatalf("script path %q, want root-addressed %q", rep.Script.Path, want)
				}
			} else if !inject.IsEnvSite(rep.Script.Site) {
				addr, ok := inject.ParsePathAddr(rep.Script.Path)
				if !ok {
					t.Fatalf("script path %q does not parse", rep.Script.Path)
				}
				if addr.Site != rep.Script.Site {
					t.Fatalf("script path %q terminates at %q, script site %q",
						rep.Script.Path, addr.Site, rep.Script.Site)
				}
			}

			// Seed stability: an independent second run emits the identical
			// trace byte stream, path addresses included.
			rep2, second := pathReproduce(t, sc)
			if !rep2.Reproduced || rep2.Script.Path != rep.Script.Path {
				t.Fatalf("second run script %v != first %v", rep2.Script, rep.Script)
			}
			if !bytes.Equal(first, second) {
				t.Fatal("two path-addressed runs produced different traces")
			}
		})
	}
}

// TestPathAddressingPairScripts: the pair scenarios reproduce under
// AddrPath too, with both member references carrying canonical paths.
func TestPathAddressingPairScripts(t *testing.T) {
	for _, id := range pairIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			sc, _ := failures.ByID(id)
			rep, first := pathReproduce(t, sc)
			if !rep.Reproduced {
				t.Fatalf("%s not reproduced under path addressing in %d rounds", id, rep.Rounds)
			}
			if rep.Script.Site != sc.RootSite {
				t.Fatalf("%s reproduced via %v, ground truth %s", id, *rep.Script, sc.RootSite)
			}
			a, b, ok := inject.PairMembers(*rep.Script)
			if !ok {
				t.Fatalf("script %v does not decompose", *rep.Script)
			}
			for _, m := range []inject.Instance{a, b} {
				if inject.IsEnvSite(m.Site) {
					continue
				}
				if m.Path == "" || !strings.Contains(m.Path, "#") {
					t.Fatalf("member %v lacks a path address", m)
				}
				if addr, ok := inject.ParsePathAddr(m.Path); !ok || addr.Site != m.Site {
					t.Fatalf("member path %q does not parse back to site %q", m.Path, m.Site)
				}
			}
			_, second := pathReproduce(t, sc)
			if !bytes.Equal(first, second) {
				t.Fatalf("%s: two path-addressed runs produced different traces", id)
			}
		})
	}
}
