package core_test

import (
	"testing"

	"anduril/internal/analysis"
	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/inject"
	"anduril/internal/logging"
	"anduril/internal/oracle"
	"anduril/internal/sys/toy"
)

// buildToyTarget assembles the two-fault toy service target: the failure
// needs a store-scrub fault AND a peer-ping fault in the degraded window.
func buildToyTarget(t *testing.T) *core.Target {
	t.Helper()
	an, err := analysis.AnalyzePackages([]string{"internal/sys/toy"})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.LogContains("service entered unrecoverable state")
	// The "production" incident: scrub fault at occurrence 2 (t=200ms)
	// plus a ping flake at occurrence 2 (t=260ms), inside the window.
	prodPlan := inject.Multi(
		inject.Exact(inject.Instance{Site: "toy.scrub-store", Occurrence: 2}),
		inject.Exact(inject.Instance{Site: "toy.ping-peer", Occurrence: 2}),
	)
	prod := cluster.Execute(9999, prodPlan, false, toy.Workload, toy.Horizon)
	if !orc.Satisfied(prod) {
		t.Fatalf("two-fault incident not triggered:\n%s", prod.RenderLog())
	}
	return &core.Target{
		ID:         "toy-two-fault",
		Workload:   toy.Workload,
		Horizon:    toy.Horizon,
		Oracle:     orc,
		FailureLog: logging.Parse(prod.RenderLog()),
		Analysis:   an,
	}
}

func TestSingleFaultSearchCannotReproduceTwoFaultFailure(t *testing.T) {
	tgt := buildToyTarget(t)
	rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 100})
	if rep.Reproduced {
		t.Fatalf("single-fault search should fail, found %v", rep.Script)
	}
	if rep.BestPartial == nil {
		t.Fatal("no best partial recorded")
	}
	// The scrub fault is the closer partial: it produces one of the two
	// missing observables.
	if rep.BestPartial.Site != "toy.scrub-store" {
		t.Fatalf("best partial = %v, want toy.scrub-store", rep.BestPartial)
	}
	t.Logf("single-fault pass: rounds=%d bestPartial=%v missing=%d",
		rep.Rounds, *rep.BestPartial, rep.BestPartialMissing)
}

func TestIterativeReproducesTwoFaultFailure(t *testing.T) {
	tgt := buildToyTarget(t)
	iter := core.ReproduceIterative(tgt, core.Options{Seed: 1, MaxRounds: 100}, 2)
	if !iter.Reproduced {
		t.Fatalf("iterative search failed after %d passes", len(iter.Reports))
	}
	if len(iter.Scripts) != 2 {
		t.Fatalf("scripts: %v", iter.Scripts)
	}
	t.Logf("iterative scripts: %v (pass rounds: %d then %d)",
		iter.Scripts, iter.Reports[0].Rounds, iter.Reports[1].Rounds)
	if !core.VerifyMulti(tgt, iter.Scripts, 4321) {
		t.Fatal("multi-fault script does not verify")
	}
}

func TestRunsPerRoundStillReproduces(t *testing.T) {
	tgt := target(t, "f1")
	rep := core.Reproduce(tgt, core.Options{Seed: 1, RunsPerRound: 3, MaxRounds: 100})
	if !rep.Reproduced {
		t.Fatalf("not reproduced with combined logs in %d rounds", rep.Rounds)
	}
}

func TestMissingObsTracked(t *testing.T) {
	tgt := buildToyTarget(t)
	rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 50})
	sawMissing := false
	for _, rd := range rep.RoundLog {
		if rd.Injected != nil && rd.MissingObs > 0 {
			sawMissing = true
		}
	}
	if !sawMissing {
		t.Fatal("missing-observable counts never recorded")
	}
}
