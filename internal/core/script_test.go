package core_test

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/inject"
)

func TestScriptRoundTrip(t *testing.T) {
	tgt := target(t, "f1")
	rep := core.Reproduce(tgt, core.Options{Seed: 1})
	if !rep.Reproduced {
		t.Fatal("f1 not reproduced")
	}
	script, err := core.ScriptOf(rep)
	if err != nil {
		t.Fatal(err)
	}
	data, err := script.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadScript(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Faults) != 1 || loaded.Faults[0] != *rep.Script {
		t.Fatalf("round trip: %+v vs %+v", loaded.Faults, rep.Script)
	}
	// The loaded plan must replay deterministically.
	s, _ := failures.ByID("f1")
	res := cluster.Execute(99, loaded.Plan(), false, s.Workload, s.Horizon)
	if !s.Oracle.Satisfied(res) {
		t.Fatal("loaded plan does not reproduce")
	}
}

func TestScriptOfFailure(t *testing.T) {
	if _, err := core.ScriptOf(&core.Report{}); err == nil {
		t.Fatal("expected error for unreproduced report")
	}
	if _, err := core.ScriptOf(nil); err == nil {
		t.Fatal("expected error for nil report")
	}
	if _, err := core.LoadScript([]byte("not json")); err == nil {
		t.Fatal("expected error for bad json")
	}
	if _, err := core.LoadScript([]byte(`{"target":"x","faults":[]}`)); err == nil {
		t.Fatal("expected error for empty faults")
	}
}

func TestMultiFaultScriptPlan(t *testing.T) {
	s := &core.ScriptFile{
		Target: "toy",
		Faults: []inject.Instance{
			{Site: "a", Occurrence: 1},
			{Site: "b", Occurrence: 2},
		},
	}
	plan := s.Plan()
	rt := inject.NewRuntime(plan)
	if rt.Reach("a", inject.IO) == nil {
		t.Fatal("a#1 should inject")
	}
	if rt.Reach("b", inject.IO) != nil {
		t.Fatal("b#1 should not inject")
	}
	if rt.Reach("b", inject.IO) == nil {
		t.Fatal("b#2 should inject (multi budget)")
	}
	if len(rt.InjectedAll()) != 2 {
		t.Fatalf("injections: %d", len(rt.InjectedAll()))
	}
}
