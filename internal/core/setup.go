package core

// Workflow steps 1-2 (§3, §5.1): relevant-observable extraction, template
// matching, spatial distances, and the fault-instance timeline alignment.

import (
	"sort"

	"anduril/internal/analysis"
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/logging"
	"anduril/internal/trace"
)

// flatten collapses thread names for the global-diff ablation.
func (e *engine) flatten(entries []logging.Entry) []logging.Entry {
	if !e.o.GlobalDiff {
		return entries
	}
	out := make([]logging.Entry, len(entries))
	for i, en := range entries {
		en.Thread = "*"
		out[i] = en
	}
	return out
}

// setup performs workflow steps 1-2: extract relevant observables, match
// them to causal-graph templates, compute spatial distances and the
// fault-instance timeline alignment.
func (e *engine) setup(free *cluster.Result) {
	cmp := logdiff.Compare(e.flatten(free.Entries), e.flatten(e.t.FailureLog))
	e.align = logdiff.NewAlignment(cmp, len(free.Entries), len(e.t.FailureLog))

	var templates []string
	for _, l := range e.t.Analysis.Logs {
		templates = append(templates, l.Template)
	}
	matcher := analysis.NewMatcher(templates)

	for _, key := range cmp.MissingKeys() {
		e.obs = append(e.obs, &observable{
			key:       key,
			positions: cmp.Missing[key],
			templates: matcher.Match(key.Msg),
		})
	}
	e.report.RelevantObservables = len(e.obs)

	// Spatial distances L_{i,k} from the static causal graph.
	e.dist = e.t.Analysis.Graph.SiteDistances()

	// Candidate sites: causally connected to at least one relevant
	// observable AND exercised by the workload (otherwise there is no
	// instance to inject).
	relevantTemplates := map[string]bool{}
	for _, o := range e.obs {
		for _, t := range o.templates {
			relevantTemplates[t] = true
		}
	}
	bySite := map[string][]instance{}
	for _, ev := range free.Trace {
		bySite[ev.Site] = append(bySite[ev.Site], instance{
			occ:        ev.Occurrence,
			logPos:     ev.LogPos,
			alignedPos: e.align.Map(ev.LogPos),
		})
	}
	total := 0
	if e.siteClass {
		for siteID, dists := range e.dist {
			reachesRelevant := false
			for tmpl := range dists {
				if relevantTemplates[tmpl] {
					reachesRelevant = true
					break
				}
			}
			if !reachesRelevant {
				continue
			}
			insts := bySite[siteID]
			if len(insts) == 0 {
				continue
			}
			e.sites = append(e.sites, &siteState{id: siteID, instances: insts, tried: make(map[int]bool)})
			total += len(insts)
		}
	}
	e.instSite = total

	// Environment pseudo-sites come from the free-run trace alone (the
	// env-enabled network reaches them per message), not the causal
	// graph: a crash or partition is causally adjacent to everything the
	// topology connects, so enumeration is gated on the env class being
	// enabled rather than on graph connectivity. With env disabled the
	// free run reached none, and this adds nothing.
	if e.envClass {
		for siteID, insts := range bySite {
			if !inject.IsEnvSite(siteID) {
				continue
			}
			st := &siteState{id: siteID, instances: insts, tried: make(map[int]bool)}
			if m, ok := inject.EnvMarker(siteID); ok {
				st.marker = logdiff.Sanitize(m)
			}
			e.sites = append(e.sites, st)
			total += len(insts)
		}
	}
	sort.Slice(e.sites, func(i, j int) bool { return e.sites[i].id < e.sites[j].id })
	e.siteIndex = make(map[string]*siteState, len(e.sites))
	for _, s := range e.sites {
		e.siteIndex[s.id] = s
	}
	e.report.CandidateSites = len(e.sites)
	e.report.CandidateInstances = total

	// Baked faults are part of the workload now; never re-explore them.
	for _, b := range e.baked {
		e.markTried(b)
	}

	// A resumed run re-executes the free run (it is deterministic) but its
	// trace continues the original stream, which already carries the
	// FreeRun event — re-emitting it would break prefix concatenation.
	if e.tracing() && e.resume == nil {
		obsLabels := make([]string, len(e.obs))
		for i, o := range e.obs {
			obsLabels[i] = obsLabel(o)
		}
		siteCounts := make([]trace.SiteCount, len(e.sites))
		for i, s := range e.sites {
			siteCounts[i] = trace.SiteCount{Site: s.id, Instances: len(s.instances)}
		}
		e.emit(&trace.Event{
			Type: trace.FreeRun, Target: e.t.ID, Strategy: string(e.o.Strategy),
			Seed: e.o.Seed, LogLines: len(free.Entries), Observables: obsLabels,
			Sites: siteCounts,
		})
	}
}
