package core

// Workflow steps 1-2 (§3, §5.1): relevant-observable extraction, template
// matching, spatial distances, and the fault-instance timeline alignment.

import (
	"sort"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/logging"
	"anduril/internal/trace"
)

// flatten collapses thread names for the global-diff ablation.
func (e *engine) flatten(entries []logging.Entry) []logging.Entry {
	if !e.o.GlobalDiff {
		return entries
	}
	out := make([]logging.Entry, len(entries))
	for i, en := range entries {
		en.Thread = "*"
		out[i] = en
	}
	return out
}

// pairSite enumerates the combined-fault pseudo-site over two member
// sites (sa.id <= sb.id; sa == sb for a self-pair). Each pair instance
// joins one member instance from each side — all cross combinations for
// distinct members, unordered combinations (occ a < occ b) for a
// self-pair — positioned on the timeline at the later member: the
// combined effect completes only when the second fault lands. Returns
// nil when no instance combination exists.
func pairSite(sa, sb *siteState) *siteState {
	st := &siteState{
		id:          inject.PairSiteID(sa.id, sb.id),
		isPair:      true,
		pairSites:   [2]string{sa.id, sb.id},
		pairMarkers: [2]string{sa.marker, sb.marker},
	}
	self := sa == sb
	n := len(sa.instances) * len(sb.instances)
	if self {
		n = len(sa.instances) * (len(sa.instances) - 1) / 2
	}
	if n == 0 {
		return nil
	}
	st.instances = make([]instance, 0, n)
	st.pairInsts = make([]inject.Instance, 0, n)
	for ai, a := range sa.instances {
		bStart := 0
		if self {
			bStart = ai + 1
		}
		for _, b := range sb.instances[bStart:] {
			pi := inject.PairInstance(
				inject.Instance{Site: sa.id, Occurrence: a.occ, Path: a.path},
				inject.Instance{Site: sb.id, Occurrence: b.occ, Path: b.path},
			)
			pi.Occurrence = len(st.instances) + 1
			logPos, alignedPos := a.logPos, a.alignedPos
			if b.logPos > logPos {
				logPos = b.logPos
			}
			if b.alignedPos > alignedPos {
				alignedPos = b.alignedPos
			}
			st.pairInsts = append(st.pairInsts, pi)
			st.instances = append(st.instances, instance{
				occ: pi.Occurrence, logPos: logPos, alignedPos: alignedPos,
				memberPos: [2]float64{a.alignedPos, b.alignedPos},
			})
		}
	}
	return st
}

// sitesByID orders candidate sites by their unique ids.
type sitesByID []*siteState

func (s sitesByID) Len() int           { return len(s) }
func (s sitesByID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s sitesByID) Less(i, j int) bool { return s[i].id < s[j].id }

// setup performs workflow steps 1-2: extract relevant observables, match
// them to causal-graph templates, compute spatial distances and the
// fault-instance timeline alignment.
func (e *engine) setup(free *cluster.Result) {
	cmp := logdiff.Compare(e.flatten(free.Entries), e.flatten(e.t.FailureLog))
	e.align = logdiff.NewAlignment(cmp, len(free.Entries), len(e.t.FailureLog))

	matcher := e.t.Analysis.Matcher()

	for _, key := range cmp.MissingKeys() {
		e.obs = append(e.obs, &observable{
			key:       key,
			positions: cmp.Missing[key],
			templates: matcher.Match(key.Msg),
		})
	}
	e.report.RelevantObservables = len(e.obs)

	// Spatial distances L_{i,k} from the static causal graph, computed
	// once per analysis Result and shared read-only across reproductions.
	e.dist = e.t.Analysis.SiteDistances()

	// Candidate sites: causally connected to at least one relevant
	// observable AND exercised by the workload (otherwise there is no
	// instance to inject).
	relevantTemplates := map[string]bool{}
	for _, o := range e.obs {
		for _, t := range o.templates {
			relevantTemplates[t] = true
		}
	}
	// Count first, then allocate each site's instance slice exactly once:
	// free-run traces carry tens of thousands of events, and letting append
	// grow each site's slice from scratch dominates setup's allocations.
	counts := map[string]int{}
	for _, ev := range free.Trace {
		counts[ev.Site]++
	}
	bySite := make(map[string][]instance, len(counts))
	for _, ev := range free.Trace {
		insts, ok := bySite[ev.Site]
		if !ok {
			insts = make([]instance, 0, counts[ev.Site])
		}
		bySite[ev.Site] = append(insts, instance{
			occ:        ev.Occurrence,
			logPos:     ev.LogPos,
			alignedPos: e.align.Map(ev.LogPos),
			path:       ev.Path,
			amp:        ev.Amp,
		})
	}
	// donors is the pair-member universe: the graph-pruned error-return
	// sites plus (with env enabled) the env pseudo-sites. It is collected
	// only when pair enumeration needs it, so default runs allocate
	// nothing extra; with pair-only fault classes the member sites are
	// still discovered here even though none enters e.sites itself.
	var donors []*siteState
	total := 0
	if e.siteClass || e.pairClass {
		for siteID, dists := range e.dist {
			reachesRelevant := false
			for tmpl := range dists {
				if relevantTemplates[tmpl] {
					reachesRelevant = true
					break
				}
			}
			if !reachesRelevant {
				continue
			}
			insts := bySite[siteID]
			if len(insts) == 0 {
				continue
			}
			st := &siteState{id: siteID, instances: insts}
			if e.pairClass {
				donors = append(donors, st)
			}
			if e.siteClass {
				e.sites = append(e.sites, st)
				total += len(insts)
			}
		}
	}
	e.instSite = total

	// Environment pseudo-sites come from the free-run trace alone (the
	// env-enabled network reaches them per message), not the causal
	// graph: a crash or partition is causally adjacent to everything the
	// topology connects, so enumeration is gated on the env class being
	// enabled rather than on graph connectivity. With env disabled the
	// free run reached none, and this adds nothing.
	if e.envClass {
		for siteID, insts := range bySite {
			if !inject.IsEnvSite(siteID) {
				continue
			}
			st := &siteState{id: siteID, instances: insts}
			if m, ok := inject.EnvMarker(siteID); ok {
				st.marker = logdiff.Sanitize(m)
			}
			e.sites = append(e.sites, st)
			if e.pairClass {
				donors = append(donors, st)
			}
			total += len(insts)
		}
	}

	// Partial-failure pseudo-sites likewise come from the free-run trace
	// alone: the partial-enabled disk and network reach them once per
	// perturbable operation, so only sites and channels the scenario
	// actually exercises are enumerated. Candidate amplitude is
	// calibrated from the free run — the Zhang et al. realism idea — per
	// class: a short-write or enospc-after instance enters only where the
	// observed payload was at least two bytes, so the persisted prefix is
	// a nonempty strict prefix of the data (smaller payloads degrade to
	// the clean all-or-nothing failure the site class already covers).
	// Partial sites are not pair donors: a pair member must be a fault
	// the member classes already search.
	if e.partialClass {
		for siteID, insts := range bySite {
			if !inject.IsPartialSite(siteID) {
				continue
			}
			switch inject.PartialClassOf(siteID) {
			case inject.PartialShortWrite, inject.PartialENOSPC:
				kept := make([]instance, 0, len(insts))
				for _, inst := range insts {
					if inst.amp >= 2 {
						kept = append(kept, inst)
					}
				}
				insts = kept
			}
			if len(insts) == 0 {
				continue
			}
			st := &siteState{id: siteID, instances: insts}
			if m, ok := inject.PartialMarker(siteID); ok {
				st.marker = logdiff.Sanitize(m)
			}
			e.sites = append(e.sites, st)
			total += len(insts)
		}
	}

	// Combined-fault pseudo-sites: every unordered pair of donor sites
	// (self-pairs included — two faults at one site, distinct instances)
	// except env×env, whose joint blast radius adds nothing the members
	// don't cover. Donors are sorted first so pair enumeration order — and
	// with it every pair instance's occurrence identity — is deterministic.
	if e.pairClass {
		sort.Sort(sitesByID(donors))
		for i, sa := range donors {
			for j := i; j < len(donors); j++ {
				sb := donors[j]
				if inject.IsEnvSite(sa.id) && inject.IsEnvSite(sb.id) {
					continue
				}
				if st := pairSite(sa, sb); st != nil {
					e.sites = append(e.sites, st)
					total += len(st.instances)
				}
			}
		}
	}
	sort.Sort(sitesByID(e.sites))

	// Under path addressing every free-run reach carries its canonical
	// path; index it per site so an injection run's path-matched reach
	// resolves back to the free-run instance it names.
	if e.o.Addressing == AddrPath {
		for _, s := range e.sites {
			if s.isPair {
				continue
			}
			s.byPath = make(map[string]int, len(s.instances))
			for _, inst := range s.instances {
				if inst.path != "" {
					s.byPath[inst.path] = inst.occ
				}
			}
		}
	}
	e.siteIndex = make(map[string]*siteState, len(e.sites))
	for _, s := range e.sites {
		e.siteIndex[s.id] = s
	}
	e.report.CandidateSites = len(e.sites)
	e.report.CandidateInstances = total

	// Baked faults are part of the workload now; never re-explore them.
	for _, b := range e.baked {
		e.markTried(b)
	}

	// A resumed run re-executes the free run (it is deterministic) but its
	// trace continues the original stream, which already carries the
	// FreeRun event — re-emitting it would break prefix concatenation.
	if e.tracing() && e.resume == nil {
		obsLabels := make([]string, len(e.obs))
		for i, o := range e.obs {
			obsLabels[i] = obsLabel(o)
		}
		siteCounts := make([]trace.SiteCount, len(e.sites))
		for i, s := range e.sites {
			siteCounts[i] = trace.SiteCount{Site: s.id, Instances: len(s.instances)}
		}
		e.emit(&trace.Event{
			Type: trace.FreeRun, Target: e.t.ID, Strategy: string(e.o.Strategy),
			Seed: e.o.Seed, LogLines: len(free.Entries), Observables: obsLabels,
			Sites: siteCounts,
		})
	}
}
