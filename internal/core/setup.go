package core

// Workflow steps 1-2 (§3, §5.1): relevant-observable extraction, template
// matching, spatial distances, and the fault-instance timeline alignment.

import (
	"sort"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/logging"
	"anduril/internal/trace"
)

// flatten collapses thread names for the global-diff ablation.
func (e *engine) flatten(entries []logging.Entry) []logging.Entry {
	if !e.o.GlobalDiff {
		return entries
	}
	out := make([]logging.Entry, len(entries))
	for i, en := range entries {
		en.Thread = "*"
		out[i] = en
	}
	return out
}

// sitesByID orders candidate sites by their unique ids.
type sitesByID []*siteState

func (s sitesByID) Len() int           { return len(s) }
func (s sitesByID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s sitesByID) Less(i, j int) bool { return s[i].id < s[j].id }

// setup performs workflow steps 1-2: extract relevant observables, match
// them to causal-graph templates, compute spatial distances and the
// fault-instance timeline alignment.
func (e *engine) setup(free *cluster.Result) {
	cmp := logdiff.Compare(e.flatten(free.Entries), e.flatten(e.t.FailureLog))
	e.align = logdiff.NewAlignment(cmp, len(free.Entries), len(e.t.FailureLog))

	matcher := e.t.Analysis.Matcher()

	for _, key := range cmp.MissingKeys() {
		e.obs = append(e.obs, &observable{
			key:       key,
			positions: cmp.Missing[key],
			templates: matcher.Match(key.Msg),
		})
	}
	e.report.RelevantObservables = len(e.obs)

	// Spatial distances L_{i,k} from the static causal graph, computed
	// once per analysis Result and shared read-only across reproductions.
	e.dist = e.t.Analysis.SiteDistances()

	// Candidate sites: causally connected to at least one relevant
	// observable AND exercised by the workload (otherwise there is no
	// instance to inject).
	relevantTemplates := map[string]bool{}
	for _, o := range e.obs {
		for _, t := range o.templates {
			relevantTemplates[t] = true
		}
	}
	// Count first, then allocate each site's instance slice exactly once:
	// free-run traces carry tens of thousands of events, and letting append
	// grow each site's slice from scratch dominates setup's allocations.
	counts := map[string]int{}
	for _, ev := range free.Trace {
		counts[ev.Site]++
	}
	bySite := make(map[string][]instance, len(counts))
	for _, ev := range free.Trace {
		insts, ok := bySite[ev.Site]
		if !ok {
			insts = make([]instance, 0, counts[ev.Site])
		}
		bySite[ev.Site] = append(insts, instance{
			occ:        ev.Occurrence,
			logPos:     ev.LogPos,
			alignedPos: e.align.Map(ev.LogPos),
		})
	}
	total := 0
	if e.siteClass {
		for siteID, dists := range e.dist {
			reachesRelevant := false
			for tmpl := range dists {
				if relevantTemplates[tmpl] {
					reachesRelevant = true
					break
				}
			}
			if !reachesRelevant {
				continue
			}
			insts := bySite[siteID]
			if len(insts) == 0 {
				continue
			}
			e.sites = append(e.sites, &siteState{id: siteID, instances: insts})
			total += len(insts)
		}
	}
	e.instSite = total

	// Environment pseudo-sites come from the free-run trace alone (the
	// env-enabled network reaches them per message), not the causal
	// graph: a crash or partition is causally adjacent to everything the
	// topology connects, so enumeration is gated on the env class being
	// enabled rather than on graph connectivity. With env disabled the
	// free run reached none, and this adds nothing.
	if e.envClass {
		for siteID, insts := range bySite {
			if !inject.IsEnvSite(siteID) {
				continue
			}
			st := &siteState{id: siteID, instances: insts}
			if m, ok := inject.EnvMarker(siteID); ok {
				st.marker = logdiff.Sanitize(m)
			}
			e.sites = append(e.sites, st)
			total += len(insts)
		}
	}
	sort.Sort(sitesByID(e.sites))
	e.siteIndex = make(map[string]*siteState, len(e.sites))
	for _, s := range e.sites {
		e.siteIndex[s.id] = s
	}
	e.report.CandidateSites = len(e.sites)
	e.report.CandidateInstances = total

	// Baked faults are part of the workload now; never re-explore them.
	for _, b := range e.baked {
		e.markTried(b)
	}

	// A resumed run re-executes the free run (it is deterministic) but its
	// trace continues the original stream, which already carries the
	// FreeRun event — re-emitting it would break prefix concatenation.
	if e.tracing() && e.resume == nil {
		obsLabels := make([]string, len(e.obs))
		for i, o := range e.obs {
			obsLabels[i] = obsLabel(o)
		}
		siteCounts := make([]trace.SiteCount, len(e.sites))
		for i, s := range e.sites {
			siteCounts[i] = trace.SiteCount{Site: s.id, Instances: len(s.instances)}
		}
		e.emit(&trace.Event{
			Type: trace.FreeRun, Target: e.t.ID, Strategy: string(e.o.Strategy),
			Seed: e.o.Seed, LogLines: len(free.Entries), Observables: obsLabels,
			Sites: siteCounts,
		})
	}
}
