package core

// Fault-instance selection (§5.2.3-§5.2.5): temporal distances, per-site
// best-untried choice, the multiply-feedback pair ranking, and the
// flexible-window growth rule.

import (
	"math"
	"sort"

	"anduril/internal/inject"
)

// temporalDistance computes T_{i,j,k} for an instance against the site's
// chosen observable: the number of log messages between the instance's
// aligned position and the observable on the failure timeline (§5.2.3).
//
// Pair instances are scored member-wise instead: each member contributes
// its own distance to whichever relevant observable is nearest to IT, and
// the pair's T is the sum. Scoring only the combined position (the later
// member) would leave the earlier fault unconstrained — hundreds of
// combinations tie and the sweep degenerates to enumeration order —
// whereas both faults of a real combined failure land near evidence of
// their own effect.
func (e *engine) temporalDistance(s *siteState, inst instance) float64 {
	if s.bestObs < 0 {
		return inst.alignedPos
	}
	if s.isPair {
		return e.nearestObs(inst.memberPos[0]) + e.nearestObs(inst.memberPos[1])
	}
	best := math.Inf(1)
	for _, p := range e.obs[s.bestObs].positions {
		d := math.Abs(inst.alignedPos - float64(p))
		if d < best {
			best = d
		}
	}
	return best
}

// nearestObs is the distance from an aligned position to the closest
// relevant observable on the failure timeline, over ALL observables: pair
// members routinely explain different log lines, so clamping both to the
// site's single chosen observable would mis-rank every cross pair.
func (e *engine) nearestObs(pos float64) float64 {
	best := math.Inf(1)
	for _, o := range e.obs {
		for _, p := range o.positions {
			d := math.Abs(pos - float64(p))
			if d < best {
				best = d
			}
		}
	}
	return best
}

// bestUntried returns the site's highest-priority untried instance.
func (e *engine) bestUntried(s *siteState, useTemporal bool, limit int) (instance, bool) {
	bestScore := math.Inf(1)
	var best instance
	found := false
	for i, inst := range s.instances {
		if limit > 0 && i >= limit {
			break
		}
		if s.tried.Has(inst.occ) {
			continue
		}
		score := float64(inst.occ)
		if useTemporal {
			score = e.temporalDistance(s, inst)
		}
		if score < bestScore {
			bestScore = score
			best = inst
			found = true
		}
	}
	return best, found
}

// candidateFor renders a selected instance as the plan-facing candidate:
// pair sites hand out their precomputed pair Instance (site, occurrence
// AND member references), everything else a (site, occurrence) pair plus
// the canonical path under path addressing.
func candidateFor(s *siteState, inst instance) inject.Instance {
	if s.isPair {
		return s.pairInsts[inst.occ-1]
	}
	return inject.Instance{Site: s.id, Occurrence: inst.occ, Path: inst.path}
}

// fillWindow selects the round's candidate window from the ranked
// sites: the best untried instance of each site, in ranking order,
// until the window is full. Selection is multi-pass across fault
// classes — error-return sites first, then environment pseudo-sites
// only when no untried site-class instance can be selected at all,
// then partial pseudo-sites, and pair pseudo-sites last, when every
// single-fault space is spent — so enabling a wider class never
// changes which instances the narrower search injects: each class runs
// to exhaustion in its exact original order before the next space
// opens. A window is therefore homogeneous in the pair/non-pair sense,
// which is what lets the round build one PairPlan for pair windows and
// one ordinary window plan otherwise.
func (e *engine) fillWindow(ranked []*siteState, window int, useTemporal bool, limit int) []inject.Instance {
	candidates := e.candBuf[:0]
	for _, s := range ranked {
		if len(candidates) >= window {
			break
		}
		if s.isPair || inject.IsEnvSite(s.id) || inject.IsPartialSite(s.id) {
			continue
		}
		if inst, ok := e.bestUntried(s, useTemporal, limit); ok {
			candidates = append(candidates, candidateFor(s, inst))
		}
	}
	if len(candidates) == 0 && e.envClass {
		for _, s := range ranked {
			if len(candidates) >= window {
				break
			}
			if !inject.IsEnvSite(s.id) {
				continue
			}
			if inst, ok := e.bestUntried(s, useTemporal, limit); ok {
				candidates = append(candidates, candidateFor(s, inst))
			}
		}
	}
	if len(candidates) == 0 && e.partialClass {
		for _, s := range ranked {
			if len(candidates) >= window {
				break
			}
			if !inject.IsPartialSite(s.id) {
				continue
			}
			if inst, ok := e.bestUntried(s, useTemporal, limit); ok {
				candidates = append(candidates, candidateFor(s, inst))
			}
		}
	}
	if len(candidates) == 0 && e.pairClass {
		for _, s := range ranked {
			if len(candidates) >= window {
				break
			}
			if !s.isPair {
				continue
			}
			if inst, ok := e.bestUntried(s, useTemporal, limit); ok {
				candidates = append(candidates, candidateFor(s, inst))
			}
		}
	}
	e.candBuf = candidates
	return candidates
}

// multiplyCandidates ranks all untried (site, instance) pairs by the
// product (F_i+1) x (T_{i,j}+1) — the §8.3 "multiply feedback" variant that
// replaces the two-level selection.
func (e *engine) multiplyCandidates(ranked []*siteState, window int) []inject.Instance {
	pairs := e.pairBuf[:0]
	for _, s := range ranked {
		if math.IsInf(s.f, 1) {
			continue
		}
		if s.isPair {
			// The multiply ablation ranks single-fault instances only: a
			// pair candidate needs its own plan shape, and mixing the two
			// in one window would make the round's plan ambiguous.
			continue
		}
		for _, inst := range s.instances {
			if s.tried.Has(inst.occ) {
				continue
			}
			t := e.temporalDistance(s, inst)
			pairs = append(pairs, scoredPair{
				inst:  candidateFor(s, inst),
				score: (s.f + 1) * (t + 1),
			})
		}
	}
	e.pairBuf = pairs
	sort.Sort(pairSorter(pairs))
	if len(pairs) > window {
		pairs = pairs[:window]
	}
	out := e.candBuf[:0]
	for _, p := range pairs {
		out = append(out, p.inst)
	}
	e.candBuf = out
	return out
}

// scoredPair is a (site, occurrence) candidate with its multiply-feedback
// score.
type scoredPair struct {
	inst  inject.Instance
	score float64
}

// pairSorter orders pairs by (score, site, occurrence) — strict and total,
// since (site, occurrence) is unique — without sort.Slice's per-call
// allocations.
type pairSorter []scoredPair

func (s pairSorter) Len() int      { return len(s) }
func (s pairSorter) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s pairSorter) Less(i, j int) bool {
	if s[i].score != s[j].score {
		return s[i].score < s[j].score
	}
	if s[i].inst.Site != s[j].inst.Site {
		return s[i].inst.Site < s[j].inst.Site
	}
	return s[i].inst.Occurrence < s[j].inst.Occurrence
}

// growWindow doubles the flexible window (§5.2.5), clamped to the total
// candidate-instance count: a window wider than the whole fault space
// selects nothing extra, and unclamped doubling overflows int after ~62
// consecutive no-injection rounds — the window goes non-positive, the
// candidate loop selects nothing, and the search falsely reports the
// fault space exhausted.
func (e *engine) growWindow(window int) int {
	if e.o.FixedWindow {
		return window
	}
	max := e.report.CandidateInstances
	// While untried site-class instances remain, the window only ever
	// holds site candidates (see fillWindow), so it clamps to the
	// site-class count — with env enumeration enabled this keeps the
	// growth sequence identical to a site-only run. Once the site space
	// is exhausted the env instances set the bound.
	if e.triedSite < e.instSite {
		max = e.instSite
	}
	if max < 1 {
		max = 1
	}
	if window >= max {
		return max
	}
	window *= 2
	if window > max || window <= 0 {
		window = max
	}
	return window
}
