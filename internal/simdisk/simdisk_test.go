package simdisk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"anduril/internal/inject"
)

func TestCreateAppendRead(t *testing.T) {
	d := New(inject.NewRuntime(nil), nil)
	if err := d.Create("s.create", "n1/wal/1.log"); err != nil {
		t.Fatal(err)
	}
	if err := d.Append("s.append", "n1/wal/1.log", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := d.Append("s.append", "n1/wal/1.log", []byte("def")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read("s.read", "n1/wal/1.log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("content: %q", got)
	}
	if d.Size("n1/wal/1.log") != 6 {
		t.Fatalf("size=%d", d.Size("n1/wal/1.log"))
	}
}

func TestReadMissingIsFileNotFound(t *testing.T) {
	d := New(inject.NewRuntime(nil), nil)
	_, err := d.Read("s.read", "nope")
	if !errors.Is(err, inject.KindErr(inject.FileNotFound)) {
		t.Fatalf("err=%v", err)
	}
}

func TestWriteTruncates(t *testing.T) {
	d := New(inject.NewRuntime(nil), nil)
	d.Append("s", "f", []byte("long content"))
	d.Write("s", "f", []byte("x"))
	got, _ := d.Read("s", "f")
	if string(got) != "x" {
		t.Fatalf("content: %q", got)
	}
}

func TestRename(t *testing.T) {
	d := New(inject.NewRuntime(nil), nil)
	d.Write("s", "tmp/ckpt", []byte("img"))
	if err := d.Rename("s.rename", "tmp/ckpt", "current/ckpt"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("tmp/ckpt") || !d.Exists("current/ckpt") {
		t.Fatal("rename did not move file")
	}
	if err := d.Rename("s.rename", "tmp/ckpt", "x"); !errors.Is(err, inject.KindErr(inject.FileNotFound)) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestDeleteAndList(t *testing.T) {
	d := New(inject.NewRuntime(nil), nil)
	d.Write("s", "n1/a", nil)
	d.Write("s", "n1/b", nil)
	d.Write("s", "n2/c", nil)
	if got := d.List("n1/"); len(got) != 2 || got[0] != "n1/a" || got[1] != "n1/b" {
		t.Fatalf("list: %v", got)
	}
	d.Delete("s", "n1/a")
	if d.Exists("n1/a") {
		t.Fatal("delete failed")
	}
}

func TestInjectedFaultAborts(t *testing.T) {
	fi := inject.NewRuntime(inject.Exact(inject.Instance{Site: "wal.append", Occurrence: 2}))
	d := New(fi, nil)
	if err := d.Append("wal.append", "f", []byte("a")); err != nil {
		t.Fatal(err)
	}
	err := d.Append("wal.append", "f", []byte("b"))
	if !errors.Is(err, inject.KindErr(inject.IO)) {
		t.Fatalf("err=%v", err)
	}
	// Failed append must not modify the file.
	got, _ := d.Read("r", "f")
	if string(got) != "a" {
		t.Fatalf("content after failed append: %q", got)
	}
}

func TestSyncIsFaultSiteOnly(t *testing.T) {
	fi := inject.NewRuntime(inject.Exact(inject.Instance{Site: "wal.sync", Occurrence: 1}))
	d := New(fi, nil)
	if err := d.Sync("wal.sync", "f"); !errors.Is(err, inject.KindErr(inject.IO)) {
		t.Fatalf("sync err=%v", err)
	}
	if err := d.Sync("wal.sync", "f"); err != nil {
		t.Fatalf("second sync: %v", err)
	}
}

func TestDeleteMissingIsFileNotFound(t *testing.T) {
	d := New(inject.NewRuntime(nil), nil)
	if err := d.Delete("s.delete", "nope"); !errors.Is(err, inject.KindErr(inject.FileNotFound)) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestShortWritePersistsPrefix(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialShortWrite, "wal.append", "")
	fi := inject.NewRuntime(inject.Exact(inject.Instance{Site: site, Occurrence: 2}))
	d := New(fi, nil)
	if err := d.Append("wal.append", "f", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	err := d.Append("wal.append", "f", []byte("wxyz"))
	if !errors.Is(err, inject.KindErr(inject.ShortWrite)) {
		t.Fatalf("err=%v", err)
	}
	got, _ := d.Read("r", "f")
	if string(got) != "abcdwx" {
		t.Fatalf("content after short write: %q", got)
	}
}

func TestShortWriteOnWriteTruncatesToPrefix(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialShortWrite, "img.write", "")
	fi := inject.NewRuntime(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	d := New(fi, nil)
	err := d.Write("img.write", "f", []byte("123456"))
	if !errors.Is(err, inject.KindErr(inject.ShortWrite)) {
		t.Fatalf("err=%v", err)
	}
	got, _ := d.Read("r", "f")
	if string(got) != "123" {
		t.Fatalf("content after short write: %q", got)
	}
}

func TestENOSPCAfterPartialAppend(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialENOSPC, "wal.append", "")
	fi := inject.NewRuntime(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	d := New(fi, nil)
	err := d.Append("wal.append", "f", []byte("abcdef"))
	if !errors.Is(err, inject.KindErr(inject.NoSpace)) {
		t.Fatalf("err=%v", err)
	}
	got, _ := d.Read("r", "f")
	if string(got) != "abc" {
		t.Fatalf("content after enospc: %q", got)
	}
}

func TestTornRenameKeepsBothPaths(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialTornRename, "ckpt.rename", "")
	fi := inject.NewRuntime(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	d := New(fi, nil)
	d.Write("s", "tmp/ckpt", []byte("img"))
	err := d.Rename("ckpt.rename", "tmp/ckpt", "cur/ckpt")
	if !errors.Is(err, inject.KindErr(inject.TornRename)) {
		t.Fatalf("err=%v", err)
	}
	if !d.Exists("tmp/ckpt") || !d.Exists("cur/ckpt") {
		t.Fatalf("torn rename state: src=%v dst=%v", d.Exists("tmp/ckpt"), d.Exists("cur/ckpt"))
	}
	got, _ := d.Read("r", "cur/ckpt")
	if string(got) != "img" {
		t.Fatalf("destination content: %q", got)
	}
}

// Inactive partial sweep must not count pseudo-sites: byte-identity of
// site-only runs depends on it.
func TestPartialSitesNotCountedWhenInactive(t *testing.T) {
	fi := inject.NewRuntime(nil)
	d := New(fi, nil)
	d.Append("wal.append", "f", []byte("abc"))
	d.Rename("s.rename", "f", "g")
	for site := range fi.Counts() {
		if inject.IsPartialSite(site) {
			t.Fatalf("partial site %s counted in inactive run", site)
		}
	}
}

// Property: append-then-read returns the concatenation, and reads never
// alias internal state (mutating the returned slice is safe).
func TestAppendReadProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		d := New(inject.NewRuntime(nil), nil)
		var want []byte
		for _, c := range chunks {
			if d.Append("s", "f", c) != nil {
				return false
			}
			want = append(want, c...)
		}
		if len(chunks) == 0 {
			return !d.Exists("f")
		}
		got, err := d.Read("s", "f")
		if err != nil || !bytes.Equal(got, want) {
			return false
		}
		for i := range got {
			got[i] = 0xFF
		}
		again, _ := d.Read("s", "f")
		return bytes.Equal(again, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
