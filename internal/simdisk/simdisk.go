// Package simdisk is the simulated persistent storage for the target
// systems. Paths are namespaced by node ("zk1/txnlog/log.1"), so data
// survives a simulated process restart within a run but is private to each
// run. Every operation carries an explicit fault-site ID: the disk boundary
// is where the paper injects IOException/FileNotFoundException for its JVM
// targets, and the same external-exception fault sites live here.
//
// # Error semantics
//
// Operations on missing paths have defined behavior, documented on each
// method: Read, Rename and Delete of a missing path return a
// FileNotFoundError attributed to the environment (site
// "env.disk.missing"), never a silent success — the partial-failure
// classes below need a crisp success baseline to perturb.
//
// # Partial failures
//
// Beyond the all-or-nothing injected faults of Reach, the disk executes
// the partial-failure pseudo-sites of inject/partial.go: a *short write*
// persists the first half of the data and then fails, *enospc-after*
// appends the first half of the data and then reports no space, and a
// *torn rename* copies the content to the destination while leaving the
// source in place. Each perturbable operation reaches its partial
// pseudo-sites in a fixed order after the operation's own site, so
// occurrence j of partial/disk/short-write/S deterministically names the
// j-th write at site S. The sweep is gated on PartialActive, so runs
// without the partial class build no pseudo-site strings and count
// nothing extra.
package simdisk

import (
	"sort"
	"strings"

	"anduril/internal/inject"
	"anduril/internal/logging"
)

// Disk is an in-memory filesystem for one simulated run.
type Disk struct {
	fi    *inject.Runtime
	log   *logging.Log
	files map[string][]byte

	// partial caches the partial pseudo-site ID strings per underlying
	// site, so an active partial sweep allocates them once per site
	// rather than once per operation.
	partial map[string]*partialSiteIDs
}

// partialSiteIDs carries one site's cached partial pseudo-site IDs.
type partialSiteIDs struct {
	shortWrite string
	enospc     string
	torn       string
}

// New creates an empty disk wired to the run's injection runtime and
// logger (partial faults emit their marker line through it).
func New(fi *inject.Runtime, log *logging.Log) *Disk {
	return &Disk{fi: fi, log: log, files: make(map[string][]byte)}
}

// partialIDs returns the cached partial pseudo-site IDs for a site,
// building them on first use. Only called when the partial sweep is
// active.
func (d *Disk) partialIDs(site string) *partialSiteIDs {
	ids := d.partial[site]
	if ids == nil {
		ids = &partialSiteIDs{
			shortWrite: inject.PartialSiteID(inject.PartialShortWrite, site, ""),
			enospc:     inject.PartialSiteID(inject.PartialENOSPC, site, ""),
			torn:       inject.PartialSiteID(inject.PartialTornRename, site, ""),
		}
		if d.partial == nil {
			d.partial = make(map[string]*partialSiteIDs)
		}
		d.partial[site] = ids
	}
	return ids
}

// partialFault logs the fired fault's marker line and builds its error
// value.
func (d *Disk) partialFault(f inject.PartialFault) error {
	if m, ok := inject.PartialMarker(f.Site()); ok && d.log != nil {
		d.log.Warnf("%s", m)
	}
	return &inject.Fault{Kind: inject.PartialKind(f.Class), Site: f.Site(), Occurrence: f.Occurrence}
}

// Create makes an empty file (truncating any previous content). site is the
// fault site of the create call.
func (d *Disk) Create(site, path string) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	d.files[path] = nil
	return nil
}

// appendBytes adds data to the end of path, creating it if absent.
func (d *Disk) appendBytes(path string, data []byte) {
	cur := d.files[path]
	if len(cur)+len(data) > cap(cur) {
		// Grow 4x with a log-sized floor: append-heavy files (txn logs)
		// are the common case, and quadrupling halves the bytes copied
		// across a file's lifetime versus plain append doubling.
		ncap := 4 * cap(cur)
		if min := 1024 + len(cur) + len(data); ncap < min {
			ncap = min
		}
		grown := make([]byte, len(cur), ncap)
		copy(grown, cur)
		cur = grown
	}
	d.files[path] = append(cur, data...)
}

// Append adds data to the end of path, creating it if absent. Under a
// short-write or enospc-after partial fault the first half of data is
// appended before the error returns.
func (d *Disk) Append(site, path string, data []byte) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	if d.fi.PartialActive() {
		ids := d.partialIDs(site)
		if f, ok := d.fi.ReachPartial(ids.shortWrite, len(data)); ok {
			d.appendBytes(path, data[:len(data)/2])
			return d.partialFault(f)
		}
		if f, ok := d.fi.ReachPartial(ids.enospc, len(data)); ok {
			d.appendBytes(path, data[:len(data)/2])
			return d.partialFault(f)
		}
	}
	d.appendBytes(path, data)
	return nil
}

// Write replaces the content of path. Under a short-write partial fault
// the file holds only the first half of data when the error returns.
func (d *Disk) Write(site, path string, data []byte) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	if d.fi.PartialActive() {
		if f, ok := d.fi.ReachPartial(d.partialIDs(site).shortWrite, len(data)); ok {
			d.files[path] = append([]byte(nil), data[:len(data)/2]...)
			return d.partialFault(f)
		}
	}
	d.files[path] = append([]byte(nil), data...)
	return nil
}

// Read returns the content of path; a missing file is a FileNotFoundError
// from the environment (not an injected fault).
func (d *Disk) Read(site, path string) ([]byte, error) {
	if err := d.fi.Reach(site, inject.FileNotFound); err != nil {
		return nil, err
	}
	data, ok := d.files[path]
	if !ok {
		return nil, &inject.Fault{Kind: inject.FileNotFound, Site: "env.disk.missing"}
	}
	return append([]byte(nil), data...), nil
}

// Sync models an fsync barrier; it is a fault site but otherwise a no-op.
func (d *Disk) Sync(site, path string) error {
	return d.fi.Reach(site, inject.IO)
}

// Rename moves a file; renaming a missing file is a FileNotFoundError
// from the environment. Under a torn-rename partial fault the content is
// copied to newPath but oldPath survives — both paths exist when the
// error returns, the defined intermediate state of a rename torn by a
// crash between the copy and the unlink.
func (d *Disk) Rename(site, oldPath, newPath string) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	data, ok := d.files[oldPath]
	if !ok {
		return &inject.Fault{Kind: inject.FileNotFound, Site: "env.disk.missing"}
	}
	if d.fi.PartialActive() {
		if f, ok := d.fi.ReachPartial(d.partialIDs(site).torn, len(data)); ok {
			d.files[newPath] = data
			return d.partialFault(f)
		}
	}
	delete(d.files, oldPath)
	d.files[newPath] = data
	return nil
}

// Delete removes a file; deleting a missing file is a FileNotFoundError
// from the environment, mirroring Read and Rename (a silent success
// would leave partial faults with no baseline to perturb).
func (d *Disk) Delete(site, path string) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	if _, ok := d.files[path]; !ok {
		return &inject.Fault{Kind: inject.FileNotFound, Site: "env.disk.missing"}
	}
	delete(d.files, path)
	return nil
}

// Exists reports whether path exists. Pure metadata; not a fault site.
func (d *Disk) Exists(path string) bool {
	_, ok := d.files[path]
	return ok
}

// Peek returns a copy of path's content without going through a fault
// site. Pure metadata like Exists; for oracles and verifiers that inspect
// external state after a run, never for target-system code (which must
// Read through its fault site).
func (d *Disk) Peek(path string) ([]byte, bool) {
	data, ok := d.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Size returns the length of path's content (0 if absent).
func (d *Disk) Size(path string) int { return len(d.files[path]) }

// List returns the sorted paths under the given prefix.
func (d *Disk) List(prefix string) []string {
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
