// Package simdisk is the simulated persistent storage for the target
// systems. Paths are namespaced by node ("zk1/txnlog/log.1"), so data
// survives a simulated process restart within a run but is private to each
// run. Every operation carries an explicit fault-site ID: the disk boundary
// is where the paper injects IOException/FileNotFoundException for its JVM
// targets, and the same external-exception fault sites live here.
package simdisk

import (
	"sort"
	"strings"

	"anduril/internal/inject"
)

// Disk is an in-memory filesystem for one simulated run.
type Disk struct {
	fi    *inject.Runtime
	files map[string][]byte
}

// New creates an empty disk wired to the run's injection runtime.
func New(fi *inject.Runtime) *Disk {
	return &Disk{fi: fi, files: make(map[string][]byte)}
}

// Create makes an empty file (truncating any previous content). site is the
// fault site of the create call.
func (d *Disk) Create(site, path string) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	d.files[path] = nil
	return nil
}

// Append adds data to the end of path, creating it if absent.
func (d *Disk) Append(site, path string, data []byte) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	cur := d.files[path]
	if len(cur)+len(data) > cap(cur) {
		// Grow 4x with a log-sized floor: append-heavy files (txn logs)
		// are the common case, and quadrupling halves the bytes copied
		// across a file's lifetime versus plain append doubling.
		ncap := 4 * cap(cur)
		if min := 1024 + len(cur) + len(data); ncap < min {
			ncap = min
		}
		grown := make([]byte, len(cur), ncap)
		copy(grown, cur)
		cur = grown
	}
	d.files[path] = append(cur, data...)
	return nil
}

// Write replaces the content of path.
func (d *Disk) Write(site, path string, data []byte) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	d.files[path] = append([]byte(nil), data...)
	return nil
}

// Read returns the content of path; a missing file is a FileNotFoundError
// from the environment (not an injected fault).
func (d *Disk) Read(site, path string) ([]byte, error) {
	if err := d.fi.Reach(site, inject.FileNotFound); err != nil {
		return nil, err
	}
	data, ok := d.files[path]
	if !ok {
		return nil, &inject.Fault{Kind: inject.FileNotFound, Site: "env.disk.missing"}
	}
	return append([]byte(nil), data...), nil
}

// Sync models an fsync barrier; it is a fault site but otherwise a no-op.
func (d *Disk) Sync(site, path string) error {
	return d.fi.Reach(site, inject.IO)
}

// Rename moves a file; renaming a missing file is a FileNotFoundError.
func (d *Disk) Rename(site, oldPath, newPath string) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	data, ok := d.files[oldPath]
	if !ok {
		return &inject.Fault{Kind: inject.FileNotFound, Site: "env.disk.missing"}
	}
	delete(d.files, oldPath)
	d.files[newPath] = data
	return nil
}

// Delete removes a file if present.
func (d *Disk) Delete(site, path string) error {
	if err := d.fi.Reach(site, inject.IO); err != nil {
		return err
	}
	delete(d.files, path)
	return nil
}

// Exists reports whether path exists. Pure metadata; not a fault site.
func (d *Disk) Exists(path string) bool {
	_, ok := d.files[path]
	return ok
}

// Size returns the length of path's content (0 if absent).
func (d *Disk) Size(path string) int { return len(d.files[path]) }

// List returns the sorted paths under the given prefix.
func (d *Disk) List(prefix string) []string {
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
