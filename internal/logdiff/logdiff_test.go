package logdiff

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"anduril/internal/logging"
)

func ent(thread, msg string) logging.Entry {
	return logging.Entry{Thread: thread, Level: logging.Info, Msg: msg}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"sync 37 entries in 12ms": "sync # entries in #ms",
		"no digits here":          "no digits here",
		"2024-11-04 log":          "#-#-# log",
		"blk_1073741825 corrupt":  "blk_# corrupt",
		"":                        "",
		"42":                      "#",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q)=%q, want %q", in, got, want)
		}
	}
}

// ids interns a list of raw strings for feeding myers in tests.
func ids(ss ...string) []int32 {
	out := make([]int32, len(ss))
	for i, s := range ss {
		out[i] = SanitizeID(s)
	}
	return out
}

// lcsLenRef is a reference quadratic LCS length implementation.
func lcsLenRef(a, b []int32) int {
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a[i-1] == b[j-1] {
				dp[i][j] = dp[i-1][j-1] + 1
			} else if dp[i-1][j] > dp[i][j-1] {
				dp[i][j] = dp[i-1][j]
			} else {
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	return dp[n][m]
}

func TestMyersMatchesAreValid(t *testing.T) {
	a := ids("a", "b", "c", "d", "e")
	b := ids("z", "b", "c", "y", "e", "w")
	matches := myers(a, b)
	// Matches must be equal elements, strictly increasing on both sides.
	prev := [2]int{-1, -1}
	for _, m := range matches {
		if a[m[0]] != b[m[1]] {
			t.Fatalf("match of unequal elements: %v", m)
		}
		if m[0] <= prev[0] || m[1] <= prev[1] {
			t.Fatalf("non-increasing match %v after %v", m, prev)
		}
		prev = m
	}
	if len(matches) != lcsLenRef(a, b) {
		t.Fatalf("matches=%d, LCS=%d", len(matches), lcsLenRef(a, b))
	}
}

func TestMyersEdgeCases(t *testing.T) {
	if m := myers(nil, ids("x")); m != nil {
		t.Fatalf("empty a: %v", m)
	}
	if m := myers(ids("x"), nil); m != nil {
		t.Fatalf("empty b: %v", m)
	}
	same := ids("p", "q", "r")
	m := myers(same, same)
	if len(m) != 3 {
		t.Fatalf("identical: %v", m)
	}
	disjoint := myers(ids("a", "b"), ids("c", "d"))
	if len(disjoint) != 0 {
		t.Fatalf("disjoint: %v", disjoint)
	}
}

// Property: myers produces a maximum matching (equals LCS length) on random
// small inputs, with valid strictly-increasing equal-element pairs.
func TestMyersProperty(t *testing.T) {
	alphabet := ids("a", "b", "c")
	f := func(seedA, seedB uint16) bool {
		ra := rand.New(rand.NewSource(int64(seedA)))
		rb := rand.New(rand.NewSource(int64(seedB)))
		a := make([]int32, ra.Intn(20))
		for i := range a {
			a[i] = alphabet[ra.Intn(len(alphabet))]
		}
		b := make([]int32, rb.Intn(20))
		for i := range b {
			b[i] = alphabet[rb.Intn(len(alphabet))]
		}
		matches := myers(a, b)
		prev := [2]int{-1, -1}
		for _, m := range matches {
			if a[m[0]] != b[m[1]] || m[0] <= prev[0] || m[1] <= prev[1] {
				return false
			}
			prev = m
		}
		return len(matches) == lcsLenRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareFindsFailureOnlyMessages(t *testing.T) {
	run := []logging.Entry{
		ent("worker", "started"),
		ent("worker", "wrote 10 bytes"),
		ent("gc", "collected"),
	}
	failure := []logging.Entry{
		ent("worker", "started"),
		ent("worker", "wrote 999 bytes"), // same after sanitize
		ent("worker", "sync timeout after 30s"),
		ent("gc", "collected"),
	}
	res := Compare(run, failure)
	want := []Key{{Thread: "worker", Msg: "sync timeout after #s"}}
	if !reflect.DeepEqual(res.MissingKeys(), want) {
		t.Fatalf("missing=%v, want %v", res.MissingKeys(), want)
	}
	if pos := res.Missing[want[0]]; len(pos) != 1 || pos[0] != 2 {
		t.Fatalf("positions=%v", pos)
	}
}

func TestCompareThreadOnlyInFailure(t *testing.T) {
	run := []logging.Entry{ent("main", "boot")}
	failure := []logging.Entry{
		ent("main", "boot"),
		ent("recovery-1", "recovering block"),
		ent("recovery-1", "recovery failed"),
	}
	res := Compare(run, failure)
	if len(res.Missing) != 2 {
		t.Fatalf("missing=%v", res.MissingKeys())
	}
	for _, k := range res.MissingKeys() {
		if k.Thread != "recovery-1" {
			t.Fatalf("unexpected key %v", k)
		}
	}
}

func TestCompareIgnoresInterleaving(t *testing.T) {
	// Same per-thread content, different interleaving: no missing messages.
	run := []logging.Entry{
		ent("a", "one"), ent("b", "uno"), ent("a", "two"), ent("b", "dos"),
	}
	failure := []logging.Entry{
		ent("b", "uno"), ent("b", "dos"), ent("a", "one"), ent("a", "two"),
	}
	res := Compare(run, failure)
	if len(res.Missing) != 0 {
		t.Fatalf("missing=%v", res.MissingKeys())
	}
}

func TestCompareRepeatedMessages(t *testing.T) {
	// Failure log has three retries; run log only one: the extra retries
	// match only once each, so the message is NOT missing (it appears in
	// both), which is the correct per-paper semantics: the observable set is
	// messages, not message counts... but extra unmatched occurrences do
	// surface as missing occurrences of the same key.
	run := []logging.Entry{ent("w", "retrying")}
	failure := []logging.Entry{ent("w", "retrying"), ent("w", "retrying"), ent("w", "retrying")}
	res := Compare(run, failure)
	k := Key{Thread: "w", Msg: "retrying"}
	if len(res.Missing[k]) != 2 {
		t.Fatalf("missing occurrences=%v", res.Missing[k])
	}
}

func TestMonotonicFilter(t *testing.T) {
	pairs := []matchPair{{a: 1, b: 5}, {a: 2, b: 3}, {a: 3, b: 4}, {a: 4, b: 9}}
	got := monotonic(pairs)
	// Longest strictly-increasing-b subsequence: (2,3),(3,4),(4,9).
	if len(got) != 3 || got[0].b != 3 || got[2].b != 9 {
		t.Fatalf("monotonic=%v", got)
	}
}

func TestAlignmentInterpolation(t *testing.T) {
	res := &Result{Matches: []matchPair{{a: 10, b: 20}, {a: 20, b: 60}}}
	al := NewAlignment(res, 30, 80)
	cases := []struct {
		pos  int
		want float64
	}{
		{0, 0}, {5, 10}, {10, 20}, {15, 40}, {20, 60}, {25, 70}, {30, 80},
	}
	for _, c := range cases {
		if got := al.Map(c.pos); got != c.want {
			t.Errorf("Map(%d)=%v, want %v", c.pos, got, c.want)
		}
	}
}

func TestAlignmentNoAnchors(t *testing.T) {
	al := NewAlignment(&Result{}, 100, 50)
	if got := al.Map(50); got != 25 {
		t.Fatalf("proportional Map(50)=%v", got)
	}
	empty := NewAlignment(&Result{}, 0, 50)
	if got := empty.Map(0); got != 0 {
		t.Fatalf("empty Map=%v", got)
	}
}

// Property: alignment is monotone non-decreasing in the run position.
func TestAlignmentMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		pairs := make([]matchPair, n)
		a, b := 0, 0
		for i := range pairs {
			a += 1 + r.Intn(10)
			b += 1 + r.Intn(10)
			pairs[i] = matchPair{a: a, b: b}
		}
		al := NewAlignment(&Result{Matches: pairs}, a+10, b+10)
		prev := -1.0
		for p := 0; p <= a+10; p++ {
			v := al.Map(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare of a log against itself yields no missing messages and
// anchors covering every entry.
func TestCompareSelfProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		threads := []string{"t1", "t2", "t3"}
		msgs := []string{"alpha", "beta", "gamma", "delta"}
		n := r.Intn(40)
		log := make([]logging.Entry, n)
		for i := range log {
			log[i] = ent(threads[r.Intn(3)], msgs[r.Intn(4)])
		}
		res := Compare(log, log)
		if len(res.Missing) != 0 {
			return false
		}
		// Self-compare must anchor every position to itself.
		if len(res.Matches) != n {
			return false
		}
		sort.Slice(res.Matches, func(i, j int) bool { return res.Matches[i].a < res.Matches[j].a })
		for i, m := range res.Matches {
			if m.a != i || m.b != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
