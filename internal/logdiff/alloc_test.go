package logdiff

import (
	"fmt"
	"testing"

	"anduril/internal/logging"
)

// TestSanitizeSteadyStateAllocs pins the interning contract: once a
// sanitized template is in the table, Sanitize and SanitizeID allocate
// nothing, no matter how the volatile digits vary.
func TestSanitizeSteadyStateAllocs(t *testing.T) {
	msgs := []string{
		"Taking snapshot at zxid=0x1a2b on myid=1",
		"Committed zxid 4660 from leader 2",
		"session 0x1000 expired after 4000 ms",
	}
	for _, m := range msgs {
		Sanitize(m) // warm the intern table
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, m := range msgs {
			Sanitize(m)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Sanitize allocated %.1f times per pass, want 0", allocs)
	}
}

// TestCompareSteadyStateAllocs bounds the per-Compare allocation count on
// warmed state. The grouping maps, Myers arrays and match buffers all come
// from the scratch pool, so what remains is the Result itself (struct,
// Missing map, Matches slice and the monotonic filter's arrays) — a small
// constant, not a function of log length. The bound has headroom over the
// measured count; the point is catching a regression back to per-entry
// allocation (which would show up as hundreds per call on this input).
func TestCompareSteadyStateAllocs(t *testing.T) {
	var run, failure []logging.Entry
	for i := 0; i < 200; i++ {
		th := fmt.Sprintf("node%d-sync", i%4)
		run = append(run, logging.Entry{Thread: th, Level: logging.Info,
			Msg: fmt.Sprintf("Committed zxid %d from leader 1", i)})
		failure = append(failure, logging.Entry{Thread: th, Level: logging.Info,
			Msg: fmt.Sprintf("Committed zxid %d from leader 1", i+7)})
	}
	failure = append(failure, logging.Entry{Thread: "node1-sync", Level: logging.Error,
		Msg: "Unexpected null datatree node restoring snapshot: NullPointerException"})

	Compare(run, failure) // warm the intern table and scratch pool
	allocs := testing.AllocsPerRun(50, func() {
		Compare(run, failure)
	})
	// Headroom above the measured ~16: under -race, sync.Pool deliberately
	// drops a quarter of Puts, so some calls rebuild their scratch. A
	// regression to per-entry allocation would still blow far past this.
	const maxAllocs = 64
	if allocs > maxAllocs {
		t.Errorf("Compare allocated %.1f times per call on a 200-entry log, want <= %d", allocs, maxAllocs)
	}
}
