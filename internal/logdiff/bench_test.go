package logdiff

import (
	"fmt"
	"math/rand"
	"testing"

	"anduril/internal/logging"
)

// synthLog builds a deterministic pseudo-log with t threads and n entries.
func synthLog(seed int64, threads, n int, mutate bool) []logging.Entry {
	r := rand.New(rand.NewSource(seed))
	msgs := []string{
		"Committing zxid=0x%d", "Synced %d entries", "Heartbeat from node %d",
		"Flushed region r%d", "Replicated %d entries to peer", "Lease renewed for client %d",
	}
	out := make([]logging.Entry, 0, n)
	for i := 0; i < n; i++ {
		tmpl := msgs[r.Intn(len(msgs))]
		if mutate && i%97 == 0 {
			tmpl = "Unexpected exception in worker %d"
		}
		out = append(out, logging.Entry{
			Thread: fmt.Sprintf("worker-%d", r.Intn(threads)),
			Level:  logging.Info,
			Msg:    fmt.Sprintf(tmpl, r.Intn(1000)),
		})
	}
	return out
}

// BenchmarkCompare measures the per-round log diff (Algorithm 2's COMPARE),
// the hottest explorer operation (the paper rewrote theirs in C, §7).
func BenchmarkCompare(b *testing.B) {
	for _, size := range []int{200, 1000, 5000} {
		b.Run(fmt.Sprintf("entries-%d", size), func(b *testing.B) {
			run := synthLog(1, 8, size, false)
			failure := synthLog(2, 8, size, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Compare(run, failure)
			}
		})
	}
}

// BenchmarkAlignmentMap measures timeline projection.
func BenchmarkAlignmentMap(b *testing.B) {
	run := synthLog(1, 8, 2000, false)
	failure := synthLog(2, 8, 2000, true)
	res := Compare(run, failure)
	al := NewAlignment(res, len(run), len(failure))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Map(i % len(run))
	}
}

// BenchmarkSanitize measures message normalization.
func BenchmarkSanitize(b *testing.B) {
	msg := "2024-11-04 09:00:00,123 received block blk_1073741825 of size 67108864 from /10.0.0.17:50010"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sanitize(msg)
	}
}
