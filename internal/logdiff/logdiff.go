// Package logdiff implements the log-comparison machinery of §5.1 and the
// timeline alignment of §5.2.3.
//
// A naive textual diff of two distributed-system logs fails for the reasons
// the paper gives: timestamps make every line unique, and concurrent
// threads interleave differently across runs. The pipeline here follows the
// paper exactly:
//
//  1. sanitize entries (timestamps are already stripped by parsing; volatile
//     numeric fields are normalized away);
//  2. group entries by thread name;
//  3. run the Myers difference algorithm per thread;
//  4. messages present only in the failure log — plus every message of
//     threads that exist only in the failure log — are the relevant
//     observables;
//  5. the per-thread LCS matches double as anchor points to map positions
//     on a run's timeline onto the failure log's timeline (piecewise linear
//     interval scaling), which the temporal-distance feedback needs.
package logdiff

import (
	"sort"
	"sync"

	"anduril/internal/logging"
)

// Key identifies an observable: a sanitized message on a thread. Thread
// names are kept verbatim (developers name threads deliberately, §5.1.1);
// message bodies are sanitized.
type Key struct {
	Thread string
	Msg    string
}

// interner canonicalizes sanitized message templates. The explorer diffs
// the same few hundred distinct sanitized forms thousands of times per
// reproduction; interning them means Sanitize allocates only the first
// time it sees a form, and the per-thread Myers diff compares small
// integer IDs instead of strings. The table is process-global (guarded
// for parallel evaluation) and bounded by the number of distinct
// sanitized templates the targets can emit.
var interner = struct {
	sync.RWMutex
	ids  map[string]int32
	strs []string
}{ids: make(map[string]int32)}

// internBytes returns the ID for a sanitized form held in buf, adding it
// to the table on first sight. The map lookup on the hit path performs no
// conversion allocation (m[string(buf)] pattern).
func internBytes(buf []byte) int32 {
	interner.RLock()
	id, ok := interner.ids[string(buf)]
	interner.RUnlock()
	if ok {
		return id
	}
	interner.Lock()
	defer interner.Unlock()
	if id, ok = interner.ids[string(buf)]; ok {
		return id
	}
	s := string(buf)
	id = int32(len(interner.strs))
	interner.strs = append(interner.strs, s)
	interner.ids[s] = id
	return id
}

// internString returns the canonical string for an interned ID.
func internString(id int32) string {
	interner.RLock()
	s := interner.strs[id]
	interner.RUnlock()
	return s
}

// sanitizeAppend writes the sanitized form of msg into buf.
func sanitizeAppend(buf []byte, msg string) []byte {
	inDigits := false
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c >= '0' && c <= '9' {
			if !inDigits {
				buf = append(buf, '#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		buf = append(buf, c)
	}
	return buf
}

// SanitizeID sanitizes a log message and returns its interned template ID.
func SanitizeID(msg string) int32 {
	var stack [192]byte
	return internBytes(sanitizeAppend(stack[:0], msg))
}

// Sanitize normalizes a log message: every maximal run of decimal digits
// becomes '#'. This removes counters, ports, sizes, offsets and other
// volatile fields while preserving message identity, the same role the
// paper's timestamp/field sanitization plays. The returned string is the
// interned canonical copy: repeated calls with messages sharing one
// sanitized form return the same string without allocating.
func Sanitize(msg string) string {
	return internString(SanitizeID(msg))
}

// byThread groups entries by thread, remembering each entry's global
// position in the log.
type posEntry struct {
	global int
	msg    int32 // interned sanitized template ID
}

// cmpScratch holds the transient buffers one Compare call needs. Instances
// cycle through a sync.Pool so repeated comparisons — thousands per
// reproduction — reuse the grouping maps and Myers working arrays instead
// of reallocating them. Stale map keys are truncated to length zero rather
// than deleted, preserving each thread's slice capacity across calls.
type cmpScratch struct {
	runTh, failTh map[string][]posEntry
	ra, fb        []int32
	matchedB      []bool
	matches       [][2]int
	v             []int
	trace         [][]int
}

var scratchPool = sync.Pool{New: func() interface{} {
	return &cmpScratch{
		runTh:  make(map[string][]posEntry),
		failTh: make(map[string][]posEntry),
	}
}}

func (sc *cmpScratch) byThread(m map[string][]posEntry, entries []logging.Entry) {
	for k, v := range m {
		m[k] = v[:0]
	}
	for i, e := range entries {
		m[e.Thread] = append(m[e.Thread], posEntry{global: i, msg: SanitizeID(e.Msg)})
	}
}

// matchPair is one LCS match between two logs, in global positions.
type matchPair struct{ a, b int }

// myers computes the LCS matches between two sequences of interned
// template IDs using the Myers O(ND) algorithm. It returns index pairs
// (i in a, j in b) of matched elements, in increasing order. The returned
// slice aliases pooled scratch and is only valid until the next call with
// the same receiver.
func myers(a, b []int32) [][2]int {
	sc := scratchPool.Get().(*cmpScratch)
	m := sc.myers(a, b)
	out := make([][2]int, len(m))
	copy(out, m)
	scratchPool.Put(sc)
	if len(out) == 0 {
		return nil
	}
	return out
}

// intRow returns trace row d resized to n, reusing prior capacity.
func (sc *cmpScratch) intRow(d, n int) []int {
	for d >= len(sc.trace) {
		sc.trace = append(sc.trace, nil)
	}
	if cap(sc.trace[d]) < n {
		sc.trace[d] = make([]int, n)
	}
	sc.trace[d] = sc.trace[d][:n]
	return sc.trace[d]
}

func (sc *cmpScratch) myers(a, b []int32) [][2]int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	max := n + m
	// v[k+max] = furthest x along diagonal k.
	need := 2*max + 1
	if cap(sc.v) < need {
		sc.v = make([]int, need)
	}
	v := sc.v[:need]
	for i := range v {
		v[i] = 0
	}
	var dFinal int
	found := false
	for d := 0; d <= max && !found; d++ {
		snapshot := sc.intRow(d, len(v))
		copy(snapshot, v)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max]
			} else {
				x = v[k-1+max] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				dFinal = d
				found = true
				break
			}
		}
	}
	// Backtrack to recover matches.
	matches := sc.matches[:0]
	x, y := n, m
	for d := dFinal; d > 0; d-- {
		vd := sc.trace[d] // furthest-reaching endpoints after d-1 steps
		k := x - y
		var prevK int
		if k == -d || (k != d && vd[k-1+max] < vd[k+1+max]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vd[prevK+max]
		prevY := prevX - prevK
		// Snake: equal elements walked over after the edit step.
		for x > prevX && y > prevY {
			x--
			y--
			matches = append(matches, [2]int{x, y})
		}
		// The edit step itself consumes one element of a or b.
		x, y = prevX, prevY
	}
	// Leading snake at d=0.
	for x > 0 && y > 0 {
		x--
		y--
		matches = append(matches, [2]int{x, y})
	}
	// Reverse into increasing order.
	for i, j := 0, len(matches)-1; i < j; i, j = i+1, j-1 {
		matches[i], matches[j] = matches[j], matches[i]
	}
	sc.matches = matches
	return matches
}

// Result is the outcome of comparing a run log against the failure log.
type Result struct {
	// Missing maps each observable that appears in the failure log but not
	// in the run log to its global positions in the failure log.
	Missing map[Key][]int
	// Matches are LCS anchor points: (run global pos, failure global pos),
	// sorted by run position and strictly increasing on both sides.
	Matches []matchPair
}

// MissingKeys returns the Missing set as a sorted slice for deterministic
// iteration.
func (r *Result) MissingKeys() []Key {
	out := make([]Key, 0, len(r.Missing))
	for k := range r.Missing {
		out = append(out, k)
	}
	sort.Sort(keySlice(out))
	return out
}

// keySlice sorts Keys by (thread, msg) without the per-call closure and
// reflection swapper that sort.Slice allocates.
type keySlice []Key

func (s keySlice) Len() int      { return len(s) }
func (s keySlice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s keySlice) Less(i, j int) bool {
	if s[i].Thread != s[j].Thread {
		return s[i].Thread < s[j].Thread
	}
	return s[i].Msg < s[j].Msg
}

// pairsByA sorts LCS anchors by run-side position.
type pairsByA []matchPair

func (s pairsByA) Len() int           { return len(s) }
func (s pairsByA) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s pairsByA) Less(i, j int) bool { return s[i].a < s[j].a }

// Compare diffs a run log against the failure log per thread (§5.1.1). The
// returned Missing set is exactly "messages that only appear in the failure
// log": the relevant observables on the first call, and the still-missing
// observables on each feedback round.
func Compare(run, failure []logging.Entry) *Result {
	res := &Result{Missing: make(map[Key][]int)}
	sc := scratchPool.Get().(*cmpScratch)
	defer scratchPool.Put(sc)
	sc.byThread(sc.runTh, run)
	sc.byThread(sc.failTh, failure)

	for thread, fEntries := range sc.failTh {
		if len(fEntries) == 0 {
			continue // truncated leftover from a previous comparison
		}
		rEntries := sc.runTh[thread]
		if len(rEntries) == 0 {
			// Thread absent from the run log: every message is relevant.
			for _, fe := range fEntries {
				k := Key{Thread: thread, Msg: internString(fe.msg)}
				res.Missing[k] = append(res.Missing[k], fe.global)
			}
			continue
		}
		ra := sc.ra[:0]
		for _, e := range rEntries {
			ra = append(ra, e.msg)
		}
		sc.ra = ra
		fb := sc.fb[:0]
		for _, e := range fEntries {
			fb = append(fb, e.msg)
		}
		sc.fb = fb
		matches := sc.myers(ra, fb)
		matchedB := sc.matchedB[:0]
		for range fb {
			matchedB = append(matchedB, false)
		}
		sc.matchedB = matchedB
		for _, m := range matches {
			matchedB[m[1]] = true
			res.Matches = append(res.Matches, matchPair{a: rEntries[m[0]].global, b: fEntries[m[1]].global})
		}
		for j, ok := range matchedB {
			if ok {
				continue
			}
			k := Key{Thread: thread, Msg: internString(fb[j])}
			res.Missing[k] = append(res.Missing[k], fEntries[j].global)
		}
	}

	// Sort anchors by run position and enforce monotonicity on the failure
	// side (longest-nondecreasing filter) so the alignment is a function.
	sort.Sort(pairsByA(res.Matches))
	res.Matches = monotonic(res.Matches)
	return res
}

// monotonic keeps a longest subsequence of anchors whose failure positions
// are strictly increasing (classic LIS, O(n log n)).
func monotonic(pairs []matchPair) []matchPair {
	if len(pairs) == 0 {
		return pairs
	}
	tails := []int{} // indices into pairs
	prev := make([]int, len(pairs))
	for i := range prev {
		prev[i] = -1
	}
	for i, p := range pairs {
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := (lo + hi) / 2
			if pairs[tails[mid]].b < p.b {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			prev[i] = tails[lo-1]
		}
		if lo == len(tails) {
			tails = append(tails, i)
		} else {
			tails[lo] = i
		}
	}
	out := make([]matchPair, 0, len(tails))
	for i := tails[len(tails)-1]; i >= 0; i = prev[i] {
		out = append(out, pairs[i])
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Alignment maps logical positions on a run's timeline onto the failure
// log's timeline using the LCS anchors, scaling linearly within each
// matched interval (§5.2.3). This is how the explorer estimates where a
// fault instance observed in the free run would sit in the production
// failure timeline.
type Alignment struct {
	anchors []matchPair
	runLen  int
	failLen int
}

// NewAlignment builds an alignment from a Compare result.
func NewAlignment(res *Result, runLen, failLen int) *Alignment {
	return &Alignment{anchors: res.Matches, runLen: runLen, failLen: failLen}
}

// Map projects a run-log position onto the failure-log timeline.
func (al *Alignment) Map(runPos int) float64 {
	if len(al.anchors) == 0 {
		// No anchors: scale proportionally.
		if al.runLen == 0 {
			return 0
		}
		return float64(runPos) * float64(al.failLen) / float64(al.runLen)
	}
	// Before the first anchor.
	first := al.anchors[0]
	if runPos <= first.a {
		if first.a == 0 {
			return float64(first.b)
		}
		return float64(runPos) * float64(first.b) / float64(first.a)
	}
	// Between anchors: binary search for the first anchor at or past runPos.
	// Anchors are sorted by run position, so this replaces the former linear
	// scan (the explorer calls Map once per candidate site per round).
	lo, hi := 1, len(al.anchors)
	for lo < hi {
		mid := (lo + hi) / 2
		if al.anchors[mid].a < runPos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(al.anchors) {
		prev, next := al.anchors[lo-1], al.anchors[lo]
		if next.a == prev.a {
			return float64(next.b)
		}
		frac := float64(runPos-prev.a) / float64(next.a-prev.a)
		return float64(prev.b) + frac*float64(next.b-prev.b)
	}
	// After the last anchor.
	last := al.anchors[len(al.anchors)-1]
	remRun := al.runLen - last.a
	remFail := al.failLen - last.b
	if remRun <= 0 {
		return float64(last.b)
	}
	return float64(last.b) + float64(runPos-last.a)*float64(remFail)/float64(remRun)
}
