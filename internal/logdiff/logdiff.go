// Package logdiff implements the log-comparison machinery of §5.1 and the
// timeline alignment of §5.2.3.
//
// A naive textual diff of two distributed-system logs fails for the reasons
// the paper gives: timestamps make every line unique, and concurrent
// threads interleave differently across runs. The pipeline here follows the
// paper exactly:
//
//  1. sanitize entries (timestamps are already stripped by parsing; volatile
//     numeric fields are normalized away);
//  2. group entries by thread name;
//  3. run the Myers difference algorithm per thread;
//  4. messages present only in the failure log — plus every message of
//     threads that exist only in the failure log — are the relevant
//     observables;
//  5. the per-thread LCS matches double as anchor points to map positions
//     on a run's timeline onto the failure log's timeline (piecewise linear
//     interval scaling), which the temporal-distance feedback needs.
package logdiff

import (
	"sort"
	"strings"

	"anduril/internal/logging"
)

// Key identifies an observable: a sanitized message on a thread. Thread
// names are kept verbatim (developers name threads deliberately, §5.1.1);
// message bodies are sanitized.
type Key struct {
	Thread string
	Msg    string
}

// Sanitize normalizes a log message: every maximal run of decimal digits
// becomes '#'. This removes counters, ports, sizes, offsets and other
// volatile fields while preserving message identity, the same role the
// paper's timestamp/field sanitization plays.
func Sanitize(msg string) string {
	var b strings.Builder
	b.Grow(len(msg))
	inDigits := false
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c >= '0' && c <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteByte(c)
	}
	return b.String()
}

// byThread groups entries by thread, remembering each entry's global
// position in the log.
type posEntry struct {
	global int
	msg    string // sanitized
}

func byThread(entries []logging.Entry) map[string][]posEntry {
	m := make(map[string][]posEntry)
	for i, e := range entries {
		m[e.Thread] = append(m[e.Thread], posEntry{global: i, msg: Sanitize(e.Msg)})
	}
	return m
}

// matchPair is one LCS match between two logs, in global positions.
type matchPair struct{ a, b int }

// myers computes the LCS matches between two string sequences using the
// Myers O(ND) algorithm. It returns index pairs (i in a, j in b) of matched
// elements, in increasing order.
func myers(a, b []string) [][2]int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	max := n + m
	// v[k+max] = furthest x along diagonal k.
	v := make([]int, 2*max+1)
	trace := make([][]int, 0, max+1)
	var dFinal int
	found := false
	for d := 0; d <= max && !found; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max]
			} else {
				x = v[k-1+max] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				dFinal = d
				found = true
				break
			}
		}
	}
	// Backtrack to recover matches.
	var matches [][2]int
	x, y := n, m
	for d := dFinal; d > 0; d-- {
		vd := trace[d] // furthest-reaching endpoints after d-1 steps
		k := x - y
		var prevK int
		if k == -d || (k != d && vd[k-1+max] < vd[k+1+max]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vd[prevK+max]
		prevY := prevX - prevK
		// Snake: equal elements walked over after the edit step.
		for x > prevX && y > prevY {
			x--
			y--
			matches = append(matches, [2]int{x, y})
		}
		// The edit step itself consumes one element of a or b.
		x, y = prevX, prevY
	}
	// Leading snake at d=0.
	for x > 0 && y > 0 {
		x--
		y--
		matches = append(matches, [2]int{x, y})
	}
	// Reverse into increasing order.
	for i, j := 0, len(matches)-1; i < j; i, j = i+1, j-1 {
		matches[i], matches[j] = matches[j], matches[i]
	}
	return matches
}

// Result is the outcome of comparing a run log against the failure log.
type Result struct {
	// Missing maps each observable that appears in the failure log but not
	// in the run log to its global positions in the failure log.
	Missing map[Key][]int
	// Matches are LCS anchor points: (run global pos, failure global pos),
	// sorted by run position and strictly increasing on both sides.
	Matches []matchPair
}

// MissingKeys returns the Missing set as a sorted slice for deterministic
// iteration.
func (r *Result) MissingKeys() []Key {
	out := make([]Key, 0, len(r.Missing))
	for k := range r.Missing {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thread != out[j].Thread {
			return out[i].Thread < out[j].Thread
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// Compare diffs a run log against the failure log per thread (§5.1.1). The
// returned Missing set is exactly "messages that only appear in the failure
// log": the relevant observables on the first call, and the still-missing
// observables on each feedback round.
func Compare(run, failure []logging.Entry) *Result {
	res := &Result{Missing: make(map[Key][]int)}
	runTh := byThread(run)
	failTh := byThread(failure)

	for thread, fEntries := range failTh {
		rEntries := runTh[thread]
		if len(rEntries) == 0 {
			// Thread absent from the run log: every message is relevant.
			for _, fe := range fEntries {
				k := Key{Thread: thread, Msg: fe.msg}
				res.Missing[k] = append(res.Missing[k], fe.global)
			}
			continue
		}
		ra := make([]string, len(rEntries))
		for i, e := range rEntries {
			ra[i] = e.msg
		}
		fb := make([]string, len(fEntries))
		for i, e := range fEntries {
			fb[i] = e.msg
		}
		matches := myers(ra, fb)
		matchedB := make([]bool, len(fb))
		for _, m := range matches {
			matchedB[m[1]] = true
			res.Matches = append(res.Matches, matchPair{a: rEntries[m[0]].global, b: fEntries[m[1]].global})
		}
		for j, ok := range matchedB {
			if ok {
				continue
			}
			k := Key{Thread: thread, Msg: fb[j]}
			res.Missing[k] = append(res.Missing[k], fEntries[j].global)
		}
	}

	// Sort anchors by run position and enforce monotonicity on the failure
	// side (longest-nondecreasing filter) so the alignment is a function.
	sort.Slice(res.Matches, func(i, j int) bool { return res.Matches[i].a < res.Matches[j].a })
	res.Matches = monotonic(res.Matches)
	return res
}

// monotonic keeps a longest subsequence of anchors whose failure positions
// are strictly increasing (classic LIS, O(n log n)).
func monotonic(pairs []matchPair) []matchPair {
	if len(pairs) == 0 {
		return pairs
	}
	tails := []int{} // indices into pairs
	prev := make([]int, len(pairs))
	for i := range prev {
		prev[i] = -1
	}
	for i, p := range pairs {
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := (lo + hi) / 2
			if pairs[tails[mid]].b < p.b {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			prev[i] = tails[lo-1]
		}
		if lo == len(tails) {
			tails = append(tails, i)
		} else {
			tails[lo] = i
		}
	}
	out := make([]matchPair, 0, len(tails))
	for i := tails[len(tails)-1]; i >= 0; i = prev[i] {
		out = append(out, pairs[i])
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Alignment maps logical positions on a run's timeline onto the failure
// log's timeline using the LCS anchors, scaling linearly within each
// matched interval (§5.2.3). This is how the explorer estimates where a
// fault instance observed in the free run would sit in the production
// failure timeline.
type Alignment struct {
	anchors []matchPair
	runLen  int
	failLen int
}

// NewAlignment builds an alignment from a Compare result.
func NewAlignment(res *Result, runLen, failLen int) *Alignment {
	return &Alignment{anchors: res.Matches, runLen: runLen, failLen: failLen}
}

// Map projects a run-log position onto the failure-log timeline.
func (al *Alignment) Map(runPos int) float64 {
	if len(al.anchors) == 0 {
		// No anchors: scale proportionally.
		if al.runLen == 0 {
			return 0
		}
		return float64(runPos) * float64(al.failLen) / float64(al.runLen)
	}
	// Before the first anchor.
	first := al.anchors[0]
	if runPos <= first.a {
		if first.a == 0 {
			return float64(first.b)
		}
		return float64(runPos) * float64(first.b) / float64(first.a)
	}
	// Between anchors.
	for i := 1; i < len(al.anchors); i++ {
		lo, hi := al.anchors[i-1], al.anchors[i]
		if runPos <= hi.a {
			if hi.a == lo.a {
				return float64(hi.b)
			}
			frac := float64(runPos-lo.a) / float64(hi.a-lo.a)
			return float64(lo.b) + frac*float64(hi.b-lo.b)
		}
	}
	// After the last anchor.
	last := al.anchors[len(al.anchors)-1]
	remRun := al.runLen - last.a
	remFail := al.failLen - last.b
	if remRun <= 0 {
		return float64(last.b)
	}
	return float64(last.b) + float64(runPos-last.a)*float64(remFail)/float64(remRun)
}
