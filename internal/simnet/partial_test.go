package simnet

import (
	"errors"
	"testing"

	"anduril/internal/des"
	"anduril/internal/inject"
)

func TestEintrSendDeliversButFailsSender(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialEINTR, "a.ping.send", "")
	sim, _, net := newNet(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	delivered := 0
	var sendErr error
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) { delivered++ })
	sim.Go("a-main", func() {
		sendErr = net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping"})
	})
	sim.Run(des.Second)
	if !errors.Is(sendErr, inject.KindErr(inject.Interrupted)) {
		t.Fatalf("send error: %v", sendErr)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1 (eintr delivers anyway)", delivered)
	}
}

func TestDupDeliverSendArrivesTwice(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialDupDeliver, "a", "b")
	sim, _, net := newNet(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	var arrivals []des.Time
	var sendErr error
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) {
		arrivals = append(arrivals, sim.Now())
	})
	sim.Go("a-main", func() {
		sendErr = net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping"})
	})
	sim.Run(des.Second)
	if sendErr != nil {
		t.Fatalf("send error: %v (dup-deliver is silent for the sender)", sendErr)
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d times, want 2", len(arrivals))
	}
	if gap := arrivals[1] - arrivals[0]; gap < inject.PartialDupOffset-3*des.Millisecond || gap > inject.PartialDupOffset+3*des.Millisecond {
		t.Fatalf("duplicate gap %v, want ~%v", gap, inject.PartialDupOffset)
	}
}

func TestEintrCallDeliversButContGetsInterrupted(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialEINTR, "a.rpc", "")
	sim, _, net := newNet(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	handled := 0
	net.Handle("b", "rpc", "b-listener", func(m Message, respond func(interface{}, error)) {
		handled++
		respond("ok", nil)
	})
	conts := 0
	var callErr error
	sim.Go("a-main", func() {
		net.Call("a.rpc", Message{From: "a", To: "b", Type: "rpc"}, 100*des.Millisecond, func(_ interface{}, err error) {
			conts++
			callErr = err
		})
	})
	sim.Run(des.Second)
	if conts != 1 {
		t.Fatalf("continuation ran %d times, want exactly 1", conts)
	}
	if !errors.Is(callErr, inject.KindErr(inject.Interrupted)) {
		t.Fatalf("call error: %v", callErr)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times, want 1 (eintr delivers anyway)", handled)
	}
}

func TestDupDeliverCallRunsHandlerTwiceContOnce(t *testing.T) {
	site := inject.PartialSiteID(inject.PartialDupDeliver, "a", "b")
	sim, _, net := newNet(inject.Exact(inject.Instance{Site: site, Occurrence: 1}))
	handled := 0
	net.Handle("b", "rpc", "b-listener", func(m Message, respond func(interface{}, error)) {
		handled++
		respond(handled, nil)
	})
	conts := 0
	var got interface{}
	sim.Go("a-main", func() {
		net.Call("a.rpc", Message{From: "a", To: "b", Type: "rpc"}, des.Second, func(payload interface{}, err error) {
			conts++
			got = payload
		})
	})
	sim.Run(2 * des.Second)
	if handled != 2 {
		t.Fatalf("handler ran %d times, want 2", handled)
	}
	if conts != 1 {
		t.Fatalf("continuation ran %d times, want exactly 1", conts)
	}
	if got != 1 {
		t.Fatalf("continuation saw payload %v, want the first response", got)
	}
}

// Inactive partial sweep must not count pseudo-sites: byte-identity of
// runs without the partial class depends on it.
func TestPartialSitesNotCountedWhenInactive(t *testing.T) {
	sim, fi, net := newNet(nil)
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) {})
	sim.Go("a-main", func() {
		net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping"})
	})
	sim.Run(des.Second)
	for site := range fi.Counts() {
		if inject.IsPartialSite(site) {
			t.Fatalf("partial site %s counted in inactive run", site)
		}
	}
}

// With the sweep active but nothing injected, every dispatched message
// ticks its eintr and dup-deliver pseudo-sites exactly once.
func TestPartialOccurrenceCounting(t *testing.T) {
	sim, fi, net := newNet(nil)
	fi.PartialEnabled = true
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) {})
	sim.Go("a-main", func() {
		for i := 0; i < 3; i++ {
			net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping"})
		}
	})
	sim.Run(des.Second)
	counts := fi.Counts()
	eintr := inject.PartialSiteID(inject.PartialEINTR, "a.ping.send", "")
	dup := inject.PartialSiteID(inject.PartialDupDeliver, "a", "b")
	if counts[eintr] != 3 || counts[dup] != 3 {
		t.Fatalf("counts: eintr=%d dup=%d, want 3/3", counts[eintr], counts[dup])
	}
}
