package simnet

import (
	"errors"
	"testing"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/logging"
)

func newNet(plan inject.Plan) (*des.Sim, *inject.Runtime, *Net) {
	sim := des.New(7)
	fi := inject.NewRuntime(plan)
	lg := logging.New(sim)
	fi.LogPos = lg.Pos
	fi.Thread = sim.Current
	net := New(sim, fi, lg, des.Millisecond, 3*des.Millisecond)
	return sim, fi, net
}

func TestSendDelivers(t *testing.T) {
	sim, _, net := newNet(nil)
	var got Message
	net.Handle("b", "ping", "b-listener", func(m Message, _ func(interface{}, error)) { got = m })
	sim.Go("a-main", func() {
		if err := net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping", Payload: 42}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	sim.Run(des.Second)
	if got.Payload != 42 || got.From != "a" {
		t.Fatalf("delivered: %+v", got)
	}
}

func TestSendInjectedFault(t *testing.T) {
	sim, _, net := newNet(inject.Exact(inject.Instance{Site: "a.ping.send", Occurrence: 1}))
	delivered := false
	var sendErr error
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) { delivered = true })
	sim.Go("a-main", func() {
		sendErr = net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping"})
	})
	sim.Run(des.Second)
	if sendErr == nil || !errors.Is(sendErr, inject.KindErr(inject.Socket)) {
		t.Fatalf("send error: %v", sendErr)
	}
	if delivered {
		t.Fatal("message delivered despite injected fault")
	}
}

func TestSendToDownNode(t *testing.T) {
	sim, _, net := newNet(nil)
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) {})
	net.SetDown("b", true)
	var sendErr error
	sim.Go("a-main", func() {
		sendErr = net.Send("a.ping.send", Message{From: "a", To: "b", Type: "ping"})
	})
	sim.Run(des.Second)
	if !errors.Is(sendErr, inject.KindErr(inject.Connection)) {
		t.Fatalf("send error: %v", sendErr)
	}
}

func TestPartition(t *testing.T) {
	sim, _, net := newNet(nil)
	net.Handle("b", "ping", "b-listener", func(Message, func(interface{}, error)) {})
	net.Partition("a", "b", true)
	var err1 error
	sim.Go("a-main", func() { err1 = net.Send("s", Message{From: "a", To: "b", Type: "ping"}) })
	sim.Run(des.Second)
	if !errors.Is(err1, inject.KindErr(inject.Connection)) {
		t.Fatalf("partitioned send: %v", err1)
	}
	net.Partition("a", "b", false)
	var err2 error
	sim.Go("a-main", func() { err2 = net.Send("s", Message{From: "a", To: "b", Type: "ping"}) })
	sim.Run(2 * des.Second)
	if err2 != nil {
		t.Fatalf("healed send: %v", err2)
	}
}

// TestPartitionHealRetiresEntries pins the map hygiene of heal: cutting
// stores two directed entries per pair and healing deletes them, so a
// long chaos run of cut/heal cycles cannot grow the partitioned map.
func TestPartitionHealRetiresEntries(t *testing.T) {
	_, _, net := newNet(nil)
	net.Partition("a", "b", true)
	net.Partition("b", "c", true)
	if got := net.Partitions(); got != 4 {
		t.Fatalf("after two cuts: %d directed entries, want 4", got)
	}
	net.Partition("b", "a", false) // heal is order-insensitive
	if got := net.Partitions(); got != 2 {
		t.Fatalf("after one heal: %d directed entries, want 2", got)
	}
	net.Partition("b", "c", false)
	if got := net.Partitions(); got != 0 {
		t.Fatalf("after healing everything: %d directed entries, want 0", got)
	}
	// Healing an uncut pair is a no-op, not a stale false entry.
	net.Partition("x", "y", false)
	if got := net.Partitions(); got != 0 {
		t.Fatalf("healing an uncut pair left %d entries", got)
	}
}

// TestCallTimeoutWhenServerCrashesMidFlight covers the race the env-fault
// layer leans on: the request is delivered and the handler runs, but the
// server goes down before its response leaves. The caller must observe a
// timeout — not a silent drop, not the response — exactly once, at a
// deterministic virtual time.
func TestCallTimeoutWhenServerCrashesMidFlight(t *testing.T) {
	run := func() (calls int, err error, at des.Time) {
		sim, _, net := newNet(nil)
		net.Handle("srv", "add", "srv-rpc", func(m Message, respond func(interface{}, error)) {
			net.SetDown("srv", true) // crash between delivery and respond
			respond(41, nil)
		})
		sim.Go("cli-main", func() {
			net.Call("cli.add.call", Message{From: "cli", To: "srv", Type: "add"},
				100*des.Millisecond, func(_ interface{}, e error) {
					calls++
					err = e
					at = sim.Now()
				})
		})
		sim.Run(des.Second)
		return calls, err, at
	}
	calls, err, at := run()
	if calls != 1 {
		t.Fatalf("continuation ran %d times, want 1", calls)
	}
	if !errors.Is(err, inject.KindErr(inject.Timeout)) {
		t.Fatalf("err=%v, want timeout", err)
	}
	if at != 100*des.Millisecond {
		t.Fatalf("timeout fired at %v, want the 100ms deadline", at)
	}
	// Virtual time stays deterministic across identical runs.
	calls2, err2, at2 := run()
	if calls2 != calls || !errors.Is(err2, inject.KindErr(inject.Timeout)) || at2 != at {
		t.Fatalf("second run diverged: calls=%d err=%v at=%v", calls2, err2, at2)
	}
}

func TestCallRoundTrip(t *testing.T) {
	sim, _, net := newNet(nil)
	net.Handle("srv", "add", "srv-rpc", func(m Message, respond func(interface{}, error)) {
		respond(m.Payload.(int)+1, nil)
	})
	var got int
	var gotErr error
	sim.Go("cli-main", func() {
		net.Call("cli.add.call", Message{From: "cli", To: "srv", Type: "add", Payload: 41},
			des.Second, func(p interface{}, err error) {
				gotErr = err
				if err == nil {
					got = p.(int)
				}
			})
	})
	sim.Run(des.Second)
	if gotErr != nil || got != 42 {
		t.Fatalf("call: %v %v", got, gotErr)
	}
}

func TestCallTimeoutWhenServerDown(t *testing.T) {
	sim, _, net := newNet(nil)
	net.Handle("srv", "add", "srv-rpc", func(m Message, respond func(interface{}, error)) {
		respond(nil, nil)
	})
	net.SetDown("srv", false)
	calls := 0
	var gotErr error
	sim.Go("cli-main", func() {
		net.SetDown("srv", true)
		net.Call("cli.add.call", Message{From: "cli", To: "srv", Type: "add"},
			100*des.Millisecond, func(_ interface{}, err error) {
				calls++
				gotErr = err
			})
	})
	sim.Run(des.Second)
	if calls != 1 {
		t.Fatalf("continuation ran %d times", calls)
	}
	if !errors.Is(gotErr, inject.KindErr(inject.Connection)) {
		t.Fatalf("err: %v", gotErr)
	}
}

func TestCallTimeoutWhenResponseLost(t *testing.T) {
	sim, _, net := newNet(nil)
	// Handler never responds: client must time out exactly once.
	net.Handle("srv", "hang", "srv-rpc", func(Message, func(interface{}, error)) {})
	calls := 0
	var gotErr error
	sim.Go("cli-main", func() {
		net.Call("s", Message{From: "cli", To: "srv", Type: "hang"},
			50*des.Millisecond, func(_ interface{}, err error) { calls++; gotErr = err })
	})
	sim.Run(des.Second)
	if calls != 1 || !errors.Is(gotErr, inject.KindErr(inject.Timeout)) {
		t.Fatalf("calls=%d err=%v", calls, gotErr)
	}
}

func TestCallResponseBeatsTimeout(t *testing.T) {
	sim, _, net := newNet(nil)
	net.Handle("srv", "ok", "srv-rpc", func(m Message, respond func(interface{}, error)) {
		respond("fine", nil)
	})
	calls := 0
	var got interface{}
	sim.Go("cli-main", func() {
		net.Call("s", Message{From: "cli", To: "srv", Type: "ok"},
			des.Second, func(p interface{}, err error) { calls++; got = p })
	})
	sim.Run(2 * des.Second)
	if calls != 1 || got != "fine" {
		t.Fatalf("calls=%d got=%v", calls, got)
	}
}

func TestCallErrorResponse(t *testing.T) {
	sim, _, net := newNet(nil)
	boom := errors.New("boom")
	net.Handle("srv", "fail", "srv-rpc", func(m Message, respond func(interface{}, error)) {
		respond(nil, boom)
	})
	var gotErr error
	sim.Go("cli-main", func() {
		net.Call("s", Message{From: "cli", To: "srv", Type: "fail"}, des.Second,
			func(_ interface{}, err error) { gotErr = err })
	})
	sim.Run(des.Second)
	if gotErr != boom {
		t.Fatalf("err=%v", gotErr)
	}
}

func TestUnknownHandler(t *testing.T) {
	sim, _, net := newNet(nil)
	var sendErr error
	sim.Go("a", func() { sendErr = net.Send("s", Message{From: "a", To: "nowhere", Type: "x"}) })
	sim.Run(des.Second)
	if sendErr == nil {
		t.Fatal("expected error for unknown handler")
	}
}

func TestHandlerRunsOnRegisteredActor(t *testing.T) {
	sim, _, net := newNet(nil)
	var actor string
	net.Handle("b", "ping", "b-xceiver-1", func(Message, func(interface{}, error)) {
		actor = sim.Current()
	})
	sim.Go("a", func() { net.Send("s", Message{From: "a", To: "b", Type: "ping"}) })
	sim.Run(des.Second)
	if actor != "b-xceiver-1" {
		t.Fatalf("handler actor=%q", actor)
	}
}
