// Package simnet is the simulated network the five target systems run on.
//
// Every send and RPC carries an explicit fault-site ID, so the network
// boundary is where external-exception fault sites live — the same place
// the paper injects SocketException/IOException for its JVM targets. The
// injection hook fires on the sender's side before the message leaves, and
// an injected fault surfaces to the caller as an ordinary error from the
// environment.
package simnet

import (
	"fmt"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/logging"
)

// Message is a one-way datagram between named nodes.
type Message struct {
	From    string
	To      string
	Type    string
	Payload interface{}
}

// Handler processes an incoming message on the receiving node. respond is
// non-nil only for RPC-style calls; calling it completes the caller's
// continuation.
type Handler func(msg Message, respond func(payload interface{}, err error))

type endpoint struct {
	actor   string
	handler Handler
}

// Net is an in-memory network with configurable latency, per-node
// down-state, and pairwise partitions.
type Net struct {
	sim *des.Sim
	fi  *inject.Runtime
	log *logging.Log

	minLat, maxLat des.Time
	handlers       map[string]map[string]endpoint
	down           map[string]bool
	partitioned    map[[2]string]bool

	// envIDs caches the five env pseudo-site ID strings per directed
	// channel, so env-enabled runs build them once per (from, to) pair
	// instead of once per message.
	envIDs map[[2]string]*envChannelIDs

	// eintrIDs and dupIDs cache the partial pseudo-site ID strings —
	// eintr per send site, dup-deliver per directed channel — so
	// partial-enabled runs build them once instead of once per message.
	eintrIDs map[string]string
	dupIDs   map[[2]string]string

	// sendPool and replyPool recycle the per-delivery state of one-way
	// messages and RPC responses. Both object kinds are referenced only
	// by the event that delivers them (fields are copied out before the
	// object returns to the pool), so reuse is safe; call objects are
	// NOT pooled because handlers may retain their respond function
	// indefinitely (e.g. a leader parking responses until commit).
	sendPool  []*sendEvent
	replyPool []*reply

	// OnCrash, when set, executes a node-crash environment fault: take
	// the node down, tear down its runtime state, and restart it with
	// recovered state after restartAfter elapses. cluster.NewEnv wires it
	// to the registered node controls; when nil the net itself toggles
	// the node's down-state around the outage.
	OnCrash func(node string, restartAfter des.Time)
}

// New creates a network. Latency of each delivery is uniform in
// [minLat, maxLat), drawn from the simulation's deterministic RNG.
func New(sim *des.Sim, fi *inject.Runtime, log *logging.Log, minLat, maxLat des.Time) *Net {
	if maxLat < minLat {
		maxLat = minLat
	}
	return &Net{
		sim: sim, fi: fi, log: log,
		minLat: minLat, maxLat: maxLat,
		handlers:    make(map[string]map[string]endpoint),
		down:        make(map[string]bool),
		partitioned: make(map[[2]string]bool),
		envIDs:      make(map[[2]string]*envChannelIDs),
		eintrIDs:    make(map[string]string),
		dupIDs:      make(map[[2]string]string),
	}
}

// envChannelIDs holds the env pseudo-site IDs relevant to one directed
// channel, in the fixed order applyEnv reaches them.
type envChannelIDs struct {
	crashFrom, crashTo string
	partition          string
	drop, delay        string
}

// channelEnvIDs returns the cached env site IDs for a channel, building
// them on first use.
func (n *Net) channelEnvIDs(from, to string) *envChannelIDs {
	key := [2]string{from, to}
	if ids, ok := n.envIDs[key]; ok {
		return ids
	}
	ids := &envChannelIDs{
		crashFrom: inject.EnvSiteID(inject.EnvCrash, from, ""),
		crashTo:   inject.EnvSiteID(inject.EnvCrash, to, ""),
		partition: inject.EnvSiteID(inject.EnvPartition, from, to),
		drop:      inject.EnvSiteID(inject.EnvDrop, from, to),
		delay:     inject.EnvSiteID(inject.EnvDelay, from, to),
	}
	n.envIDs[key] = ids
	return ids
}

// Handle registers a handler for messages of msgType addressed to node.
// The handler runs on the given actor (thread) name.
func (n *Net) Handle(node, msgType, actor string, h Handler) {
	m := n.handlers[node]
	if m == nil {
		m = make(map[string]endpoint)
		n.handlers[node] = m
	}
	m[msgType] = endpoint{actor: actor, handler: h}
}

// SetDown marks a node as unreachable (connection errors for senders).
func (n *Net) SetDown(node string, down bool) { n.down[node] = down }

// Partition cuts (or restores) connectivity between a pair of nodes.
// Healing deletes the pair's entries rather than storing false, so long
// chaos runs with many cut/heal cycles don't grow the map unboundedly.
func (n *Net) Partition(a, b string, cut bool) {
	if !cut {
		delete(n.partitioned, [2]string{a, b})
		delete(n.partitioned, [2]string{b, a})
		return
	}
	n.partitioned[[2]string{a, b}] = true
	n.partitioned[[2]string{b, a}] = true
}

// Partitions returns how many directed pair entries are currently cut —
// exposed so tests can assert heals fully retire their entries.
func (n *Net) Partitions() int { return len(n.partitioned) }

func (n *Net) latency() des.Time {
	return n.minLat + n.sim.Jitter(n.maxLat-n.minLat+1)
}

// Shared error values for environment-level connection failures. They are
// allocated once and must be treated as immutable by callers (errors.Is /
// inject.AsFault inspection only) — the message hot path returns them on
// every unreachable peer, so a per-call allocation would dominate chaos
// runs with long-lived partitions.
var (
	errPeerDown    = &inject.Fault{Kind: inject.Connection, Site: "env.net.down"}
	errPartitioned = &inject.Fault{Kind: inject.Connection, Site: "env.net.partition"}
	errRPCTimeout  = &inject.Fault{Kind: inject.Timeout, Site: "env.net.rpc-timeout"}
)

// reachability returns a connection-level error if to is unreachable.
func (n *Net) reachability(from, to string) error {
	if n.down[to] {
		return errPeerDown
	}
	if n.partitioned[[2]string{from, to}] {
		return errPartitioned
	}
	return nil
}

// applyEnv reaches every environment pseudo-site relevant to one
// message, in a fixed order — crash(from), crash(to), partition(pair),
// drop(channel), delay(channel) — so env occurrences are measured
// against a deterministic per-run event counter (one tick per message
// per site). It executes whichever env fault the plan injects and
// reports the message-level effect: drop the message silently, or add
// extra delivery latency. Crash and partition effects are not returned;
// they land in the down/partitioned state that reachability reads next.
// When env faults are disabled for the run every ReachEnv is a no-op.
func (n *Net) applyEnv(from, to string) (drop bool, extra des.Time) {
	if !n.fi.EnvActive() {
		// Every ReachEnv below would be a no-op; skip the sweep (and the
		// site-ID construction) entirely on site-only runs.
		return false, 0
	}
	ids := n.channelEnvIDs(from, to)
	if f, ok := n.fi.ReachEnv(ids.crashFrom); ok {
		n.crashNode(f)
		return true, 0 // the sender died mid-send; the message is lost with it
	}
	if to != from {
		if f, ok := n.fi.ReachEnv(ids.crashTo); ok {
			n.crashNode(f) // reachability sees the receiver down
		}
		if f, ok := n.fi.ReachEnv(ids.partition); ok {
			n.cutPair(f) // reachability sees the fresh cut
		}
	}
	if f, ok := n.fi.ReachEnv(ids.drop); ok {
		n.logMarker(f)
		return true, 0
	}
	if f, ok := n.fi.ReachEnv(ids.delay); ok {
		n.logMarker(f)
		return false, f.Duration
	}
	return false, 0
}

// eintrSiteID returns the cached eintr pseudo-site ID for a send site.
func (n *Net) eintrSiteID(site string) string {
	id, ok := n.eintrIDs[site]
	if !ok {
		id = inject.PartialSiteID(inject.PartialEINTR, site, "")
		n.eintrIDs[site] = id
	}
	return id
}

// dupSiteID returns the cached dup-deliver pseudo-site ID for a channel.
func (n *Net) dupSiteID(from, to string) string {
	key := [2]string{from, to}
	id, ok := n.dupIDs[key]
	if !ok {
		id = inject.PartialSiteID(inject.PartialDupDeliver, from, to)
		n.dupIDs[key] = id
	}
	return id
}

// applyPartial reaches the partial pseudo-sites relevant to one
// dispatched message, in a fixed order — eintr(site), then
// dup-deliver(channel) — so partial occurrences are measured against a
// deterministic per-run event counter, like the env sweep above. It
// runs only for messages that actually dispatch (past the env drop,
// reachability and handler checks), and reports the message-level
// effect: a sender-side InterruptedError (the message is still
// delivered — the bytes were already on the wire), or a duplicated
// delivery. When partial faults are disabled for the run every
// ReachPartial is a no-op and the sweep is skipped entirely.
func (n *Net) applyPartial(site, from, to string) (err error, dup bool) {
	if !n.fi.PartialActive() {
		return nil, false
	}
	if f, ok := n.fi.ReachPartial(n.eintrSiteID(site), 0); ok {
		n.logPartialMarker(f)
		return &inject.Fault{Kind: inject.Interrupted, Site: f.Site(), Occurrence: f.Occurrence}, false
	}
	if f, ok := n.fi.ReachPartial(n.dupSiteID(from, to), 0); ok {
		n.logPartialMarker(f)
		return nil, true
	}
	return nil, false
}

// logPartialMarker emits the injection marker line for an executed
// partial fault; like logMarker, the text comes from the inject package
// so the explorer's marker-match ranking sees exactly what is logged.
func (n *Net) logPartialMarker(f inject.PartialFault) {
	if m, ok := inject.PartialMarker(f.Site()); ok {
		n.log.Warnf("%s", m)
	}
}

// logMarker emits the injection marker line for an executed env fault.
// The text comes from inject.EnvMarker so the explorer's marker-match
// ranking sees exactly what the network logs.
func (n *Net) logMarker(f inject.EnvFault) {
	if m, ok := inject.EnvMarker(f.Site()); ok {
		n.log.Warnf("%s", m)
	}
}

// crashNode executes an injected crash fault.
func (n *Net) crashNode(f inject.EnvFault) {
	n.logMarker(f)
	if n.OnCrash != nil {
		n.OnCrash(f.Subject, f.Duration)
		return
	}
	n.down[f.Subject] = true
	n.sim.Post("env-restart", f.Duration, func() {
		n.down[f.Subject] = false
		n.log.Infof("env: node %s restarted", f.Subject)
	})
}

// cutPair executes an injected partition fault: a symmetric cut that
// heals itself after the fault's duration.
func (n *Net) cutPair(f inject.EnvFault) {
	n.logMarker(f)
	n.Partition(f.Subject, f.Peer, true)
	n.sim.Post("env-heal", f.Duration, func() {
		n.Partition(f.Subject, f.Peer, false)
		n.log.Infof("env: partition %s/%s healed", f.Subject, f.Peer)
	})
}

// sendEvent carries one in-flight one-way message through the event
// queue. Pooled: the delivery copies its fields out and releases the
// object before dispatch, so steady-state sends allocate nothing.
type sendEvent struct {
	n   *Net
	msg Message
	ep  endpoint
}

func (n *Net) getSend(msg Message, ep endpoint) *sendEvent {
	if k := len(n.sendPool); k > 0 {
		d := n.sendPool[k-1]
		n.sendPool = n.sendPool[:k-1]
		d.msg, d.ep = msg, ep
		return d
	}
	return &sendEvent{n: n, msg: msg, ep: ep}
}

// runSend delivers a one-way message (top-level so the delivery event
// carries a pooled *sendEvent instead of a fresh closure).
func runSend(x interface{}) {
	d := x.(*sendEvent)
	n, msg, ep := d.n, d.msg, d.ep
	d.msg, d.ep = Message{}, endpoint{} // drop payload references
	n.sendPool = append(n.sendPool, d)
	if n.down[msg.To] {
		return
	}
	ep.handler(msg, nil)
}

// Send transmits a one-way message. site is the sender-side fault site; an
// injected fault (or an unreachable peer) is returned synchronously, and the
// message is not delivered. Environment faults differ: a dropped message
// (or one lost to the sender's own crash) returns nil — the sender
// believes it sent.
func (n *Net) Send(site string, msg Message) error {
	if err := n.fi.Reach(site, inject.Socket); err != nil {
		return err
	}
	drop, extra := n.applyEnv(msg.From, msg.To)
	if drop {
		return nil
	}
	if err := n.reachability(msg.From, msg.To); err != nil {
		return err
	}
	ep, ok := n.handlers[msg.To][msg.Type]
	if !ok {
		return fmt.Errorf("simnet: %s has no handler for %s", msg.To, msg.Type)
	}
	perr, dup := n.applyPartial(site, msg.From, msg.To)
	// The delivery runs under a child path node labelled with the send
	// site — the call-tree edge of path addressing. PathExtend returns 0
	// (the root, what PostArg would inherit) when tracking is off.
	n.sim.PostArgPath(ep.actor, n.latency()+extra, runSend, n.getSend(msg, ep), n.sim.PathExtend(site))
	if dup {
		// Duplicated delivery: the same message arrives a second time at a
		// fixed virtual-time offset after its first copy is dispatched.
		n.sim.PostArgPath(ep.actor, n.latency()+extra+inject.PartialDupOffset, runSend, n.getSend(msg, ep), n.sim.PathExtend(site))
	}
	// An eintr fault surfaces to the sender even though the message was
	// delivered: the bytes were already on the wire when the interrupt hit.
	return perr
}

// call is the state of one in-flight RPC. It is allocated fresh per Call
// (handlers may retain respondFn arbitrarily long, so reuse would be
// unsound), but all of its events go through shared top-level functions,
// so one RPC costs two allocations: the call and its respond function.
type call struct {
	n         *Net
	caller    string
	msg       Message
	ep        endpoint
	cont      func(payload interface{}, err error)
	respondFn func(payload interface{}, err error)
	timer     des.Timer
	path      int32 // caller's path node at Call time; replies restore it
	done      bool

	// payload/err hold the outcome for the synchronous-failure path
	// (injected fault, unreachable peer, missing handler).
	payload interface{}
	err     error
}

// respond is handed to the remote handler; it ships the response back to
// the caller's actor after one more latency draw.
func (c *call) respond(payload interface{}, err error) {
	n := c.n
	if n.down[c.msg.To] {
		return // responder went down before responding; caller times out
	}
	var r *reply
	if k := len(n.replyPool); k > 0 {
		r = n.replyPool[k-1]
		n.replyPool = n.replyPool[:k-1]
		r.c, r.payload, r.err = c, payload, err
	} else {
		r = &reply{c: c, payload: payload, err: err}
	}
	// The reply resumes the caller's continuation under the caller's own
	// path node — an RPC return pops the call edge rather than extending
	// it, so path depth tracks RPC nesting, not total message count.
	n.sim.PostArgPath(c.caller, n.latency(), runReply, r, c.path)
}

// reply is one response in flight from responder to caller. Pooled: each
// respond call gets its own reply so two racing responses each deliver
// their own payload, exactly as the closure-per-respond code did.
type reply struct {
	c       *call
	payload interface{}
	err     error
}

func runReply(x interface{}) {
	r := x.(*reply)
	c, payload, err := r.c, r.payload, r.err
	n := c.n
	r.c, r.payload, r.err = nil, nil, nil
	n.replyPool = append(n.replyPool, r)
	if c.done {
		return
	}
	c.done = true
	c.timer.Cancel()
	c.cont(payload, err)
}

// runCallFinish completes an RPC that failed synchronously on the caller's
// side (the error still arrives as its own event, like any response).
func runCallFinish(x interface{}) {
	c := x.(*call)
	c.cont(c.payload, c.err)
}

// runCallTimeout fires when no response arrived within the RPC timeout.
func runCallTimeout(x interface{}) {
	c := x.(*call)
	if c.done {
		return
	}
	c.done = true
	c.cont(nil, errRPCTimeout)
}

// runCallRequest delivers the request leg to the remote handler.
func runCallRequest(x interface{}) {
	c := x.(*call)
	if c.n.down[c.msg.To] {
		return // request lost; caller times out
	}
	c.ep.handler(c.msg, c.respondFn)
}

// Call performs an RPC: the remote handler's respond() resumes the caller's
// continuation cont on the caller's current actor. If no response arrives
// within timeout, cont runs with a TimeoutError. site is the sender-side
// fault site. cont runs exactly once.
func (n *Net) Call(site string, msg Message, timeout des.Time, cont func(payload interface{}, err error)) {
	caller := n.sim.Current()
	if caller == "" {
		caller = msg.From
	}
	c := &call{n: n, caller: caller, msg: msg, cont: cont, path: n.sim.CurPath()}

	if err := n.fi.Reach(site, inject.Socket); err != nil {
		c.err = err
		n.sim.PostArg(caller, 0, runCallFinish, c)
		return
	}
	drop, extra := n.applyEnv(msg.From, msg.To)
	if err := n.reachability(msg.From, msg.To); err != nil {
		c.err = err
		n.sim.PostArg(caller, 0, runCallFinish, c)
		return
	}
	ep, ok := n.handlers[msg.To][msg.Type]
	if !ok {
		c.err = fmt.Errorf("simnet: %s has no handler for %s", msg.To, msg.Type)
		n.sim.PostArg(caller, 0, runCallFinish, c)
		return
	}
	c.ep = ep

	if timeout > 0 {
		c.timer = n.sim.ScheduleArg(caller, timeout, runCallTimeout, c)
	}
	if drop {
		return // request lost in the environment; caller times out
	}
	perr, dup := n.applyPartial(site, msg.From, msg.To)
	if perr != nil {
		// eintr: the request still reaches the handler, but the caller
		// fails with InterruptedError now. Marking the call done drops the
		// real response (and the timeout) on arrival, so cont still runs
		// exactly once.
		c.done = true
		c.err = perr
		n.sim.PostArg(caller, 0, runCallFinish, c)
	}
	c.respondFn = c.respond
	// The request leg, like a one-way send, extends the call tree by one
	// edge labelled with the RPC's fault site.
	n.sim.PostArgPath(ep.actor, n.latency()+extra, runCallRequest, c, n.sim.PathExtend(site))
	if dup {
		// Duplicated delivery: the handler runs twice for one logical
		// request; the second response is dropped by the done flag.
		n.sim.PostArgPath(ep.actor, n.latency()+extra+inject.PartialDupOffset, runCallRequest, c, n.sim.PathExtend(site))
	}
}
