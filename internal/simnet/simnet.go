// Package simnet is the simulated network the five target systems run on.
//
// Every send and RPC carries an explicit fault-site ID, so the network
// boundary is where external-exception fault sites live — the same place
// the paper injects SocketException/IOException for its JVM targets. The
// injection hook fires on the sender's side before the message leaves, and
// an injected fault surfaces to the caller as an ordinary error from the
// environment.
package simnet

import (
	"fmt"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/logging"
)

// Message is a one-way datagram between named nodes.
type Message struct {
	From    string
	To      string
	Type    string
	Payload interface{}
}

// Handler processes an incoming message on the receiving node. respond is
// non-nil only for RPC-style calls; calling it completes the caller's
// continuation.
type Handler func(msg Message, respond func(payload interface{}, err error))

type endpoint struct {
	actor   string
	handler Handler
}

// Net is an in-memory network with configurable latency, per-node
// down-state, and pairwise partitions.
type Net struct {
	sim *des.Sim
	fi  *inject.Runtime
	log *logging.Log

	minLat, maxLat des.Time
	handlers       map[string]map[string]endpoint
	down           map[string]bool
	partitioned    map[[2]string]bool

	// OnCrash, when set, executes a node-crash environment fault: take
	// the node down, tear down its runtime state, and restart it with
	// recovered state after restartAfter elapses. cluster.NewEnv wires it
	// to the registered node controls; when nil the net itself toggles
	// the node's down-state around the outage.
	OnCrash func(node string, restartAfter des.Time)
}

// New creates a network. Latency of each delivery is uniform in
// [minLat, maxLat), drawn from the simulation's deterministic RNG.
func New(sim *des.Sim, fi *inject.Runtime, log *logging.Log, minLat, maxLat des.Time) *Net {
	if maxLat < minLat {
		maxLat = minLat
	}
	return &Net{
		sim: sim, fi: fi, log: log,
		minLat: minLat, maxLat: maxLat,
		handlers:    make(map[string]map[string]endpoint),
		down:        make(map[string]bool),
		partitioned: make(map[[2]string]bool),
	}
}

// Handle registers a handler for messages of msgType addressed to node.
// The handler runs on the given actor (thread) name.
func (n *Net) Handle(node, msgType, actor string, h Handler) {
	m := n.handlers[node]
	if m == nil {
		m = make(map[string]endpoint)
		n.handlers[node] = m
	}
	m[msgType] = endpoint{actor: actor, handler: h}
}

// SetDown marks a node as unreachable (connection errors for senders).
func (n *Net) SetDown(node string, down bool) { n.down[node] = down }

// Partition cuts (or restores) connectivity between a pair of nodes.
// Healing deletes the pair's entries rather than storing false, so long
// chaos runs with many cut/heal cycles don't grow the map unboundedly.
func (n *Net) Partition(a, b string, cut bool) {
	if !cut {
		delete(n.partitioned, [2]string{a, b})
		delete(n.partitioned, [2]string{b, a})
		return
	}
	n.partitioned[[2]string{a, b}] = true
	n.partitioned[[2]string{b, a}] = true
}

// Partitions returns how many directed pair entries are currently cut —
// exposed so tests can assert heals fully retire their entries.
func (n *Net) Partitions() int { return len(n.partitioned) }

func (n *Net) latency() des.Time {
	return n.minLat + n.sim.Jitter(n.maxLat-n.minLat+1)
}

// reachability returns a connection-level error if to is unreachable.
func (n *Net) reachability(from, to string) error {
	if n.down[to] {
		return &inject.Fault{Kind: inject.Connection, Site: "env.net.down"}
	}
	if n.partitioned[[2]string{from, to}] {
		return &inject.Fault{Kind: inject.Connection, Site: "env.net.partition"}
	}
	return nil
}

// applyEnv reaches every environment pseudo-site relevant to one
// message, in a fixed order — crash(from), crash(to), partition(pair),
// drop(channel), delay(channel) — so env occurrences are measured
// against a deterministic per-run event counter (one tick per message
// per site). It executes whichever env fault the plan injects and
// reports the message-level effect: drop the message silently, or add
// extra delivery latency. Crash and partition effects are not returned;
// they land in the down/partitioned state that reachability reads next.
// When env faults are disabled for the run every ReachEnv is a no-op.
func (n *Net) applyEnv(from, to string) (drop bool, extra des.Time) {
	if f, ok := n.fi.ReachEnv(inject.EnvSiteID(inject.EnvCrash, from, "")); ok {
		n.crashNode(f)
		return true, 0 // the sender died mid-send; the message is lost with it
	}
	if to != from {
		if f, ok := n.fi.ReachEnv(inject.EnvSiteID(inject.EnvCrash, to, "")); ok {
			n.crashNode(f) // reachability sees the receiver down
		}
		if f, ok := n.fi.ReachEnv(inject.EnvSiteID(inject.EnvPartition, from, to)); ok {
			n.cutPair(f) // reachability sees the fresh cut
		}
	}
	if f, ok := n.fi.ReachEnv(inject.EnvSiteID(inject.EnvDrop, from, to)); ok {
		n.logMarker(f)
		return true, 0
	}
	if f, ok := n.fi.ReachEnv(inject.EnvSiteID(inject.EnvDelay, from, to)); ok {
		n.logMarker(f)
		return false, f.Duration
	}
	return false, 0
}

// logMarker emits the injection marker line for an executed env fault.
// The text comes from inject.EnvMarker so the explorer's marker-match
// ranking sees exactly what the network logs.
func (n *Net) logMarker(f inject.EnvFault) {
	if m, ok := inject.EnvMarker(f.Site()); ok {
		n.log.Warnf("%s", m)
	}
}

// crashNode executes an injected crash fault.
func (n *Net) crashNode(f inject.EnvFault) {
	n.logMarker(f)
	if n.OnCrash != nil {
		n.OnCrash(f.Subject, f.Duration)
		return
	}
	n.down[f.Subject] = true
	n.sim.Schedule("env-restart", f.Duration, func() {
		n.down[f.Subject] = false
		n.log.Infof("env: node %s restarted", f.Subject)
	})
}

// cutPair executes an injected partition fault: a symmetric cut that
// heals itself after the fault's duration.
func (n *Net) cutPair(f inject.EnvFault) {
	n.logMarker(f)
	n.Partition(f.Subject, f.Peer, true)
	n.sim.Schedule("env-heal", f.Duration, func() {
		n.Partition(f.Subject, f.Peer, false)
		n.log.Infof("env: partition %s/%s healed", f.Subject, f.Peer)
	})
}

// Send transmits a one-way message. site is the sender-side fault site; an
// injected fault (or an unreachable peer) is returned synchronously, and the
// message is not delivered. Environment faults differ: a dropped message
// (or one lost to the sender's own crash) returns nil — the sender
// believes it sent.
func (n *Net) Send(site string, msg Message) error {
	if err := n.fi.Reach(site, inject.Socket); err != nil {
		return err
	}
	drop, extra := n.applyEnv(msg.From, msg.To)
	if drop {
		return nil
	}
	if err := n.reachability(msg.From, msg.To); err != nil {
		return err
	}
	ep, ok := n.handlers[msg.To][msg.Type]
	if !ok {
		return fmt.Errorf("simnet: %s has no handler for %s", msg.To, msg.Type)
	}
	n.sim.Schedule(ep.actor, n.latency()+extra, func() {
		if n.down[msg.To] {
			return
		}
		ep.handler(msg, nil)
	})
	return nil
}

// Call performs an RPC: the remote handler's respond() resumes the caller's
// continuation cont on the caller's current actor. If no response arrives
// within timeout, cont runs with a TimeoutError. site is the sender-side
// fault site. cont runs exactly once.
func (n *Net) Call(site string, msg Message, timeout des.Time, cont func(payload interface{}, err error)) {
	caller := n.sim.Current()
	if caller == "" {
		caller = msg.From
	}
	finish := func(payload interface{}, err error) {
		n.sim.Go(caller, func() { cont(payload, err) })
	}

	if err := n.fi.Reach(site, inject.Socket); err != nil {
		finish(nil, err)
		return
	}
	drop, extra := n.applyEnv(msg.From, msg.To)
	if err := n.reachability(msg.From, msg.To); err != nil {
		finish(nil, err)
		return
	}
	ep, ok := n.handlers[msg.To][msg.Type]
	if !ok {
		finish(nil, fmt.Errorf("simnet: %s has no handler for %s", msg.To, msg.Type))
		return
	}

	done := false
	var cancelTimeout func()
	if timeout > 0 {
		cancelTimeout = n.sim.Schedule(caller, timeout, func() {
			if done {
				return
			}
			done = true
			cont(nil, &inject.Fault{Kind: inject.Timeout, Site: "env.net.rpc-timeout"})
		})
	}
	if drop {
		return // request lost in the environment; caller times out
	}
	respond := func(payload interface{}, err error) {
		if n.down[msg.To] {
			return // responder went down before responding; caller times out
		}
		n.sim.Schedule(caller, n.latency(), func() {
			if done {
				return
			}
			done = true
			if cancelTimeout != nil {
				cancelTimeout()
			}
			cont(payload, err)
		})
	}
	n.sim.Schedule(ep.actor, n.latency()+extra, func() {
		if n.down[msg.To] {
			return // request lost; caller times out
		}
		ep.handler(msg, respond)
	})
}
