module anduril

go 1.22
