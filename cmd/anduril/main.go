// Command anduril reproduces one of the dataset failures from the command
// line, printing per-round progress and the final deterministic
// reproduction script.
//
// Usage:
//
//	anduril -list
//	anduril -failure f17 [-strategy full-feedback] [-seed 1] [-max-rounds 500] [-window 10] [-adjust 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"anduril"
	"anduril/internal/core"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the dataset failures and exit")
		failure   = flag.String("failure", "", "dataset failure to reproduce (f1..f22 or issue id)")
		strategy  = flag.String("strategy", string(anduril.FullFeedback), "exploration strategy")
		seed      = flag.Int64("seed", 1, "master seed (round r runs with seed+r)")
		maxRounds = flag.Int("max-rounds", 500, "round cap (the paper's 24-hour analog)")
		window    = flag.Int("window", 10, "initial flexible-window size k")
		adjust    = flag.Int("adjust", 1, "observable priority adjustment s")
		verbose   = flag.Bool("v", false, "print every round")
		iterative = flag.Int("iterative", 0, "search for up to N causally-independent faults")
		scriptOut = flag.String("script-out", "", "write the reproduction script as JSON to this file")
		dotOut    = flag.String("graph-dot", "", "write the static causal graph (Graphviz) to this file")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-5s %-10s %-11s %s\n", "id", "issue", "system", "description")
		for _, info := range anduril.DatasetCatalog() {
			fmt.Printf("%-5s %-10s %-11s %s\n", info.ID, info.Issue, info.System, info.Description)
		}
		return
	}
	if *failure == "" {
		fmt.Fprintln(os.Stderr, "anduril: -failure or -list required")
		flag.Usage()
		os.Exit(2)
	}

	target, err := anduril.Dataset(*failure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "anduril: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("reproducing %s (%s) on %s: %s\n", target.ID, target.Issue, target.System, target.Description)

	if *dotOut != "" {
		dot := target.Analysis.Graph.DOT(target.ID, 400)
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "anduril: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("causal graph written to %s (%d nodes, %d edges)\n",
			*dotOut, target.Analysis.Graph.NumNodes(), target.Analysis.Graph.NumEdges())
	}

	if *iterative > 1 {
		iter := anduril.ReproduceIterative(target, anduril.Options{
			Strategy: anduril.Strategy(*strategy), Seed: *seed,
			MaxRounds: *maxRounds, Window: *window, Adjust: *adjust,
		}, *iterative)
		if !iter.Reproduced {
			fmt.Printf("NOT reproduced after %d passes\n", len(iter.Reports))
			os.Exit(1)
		}
		fmt.Printf("REPRODUCED with %d faults: %v\n", len(iter.Scripts), iter.Scripts)
		if *scriptOut != "" {
			writeScript(*scriptOut, func() (*core.ScriptFile, error) { return core.ScriptOfIter(iter) })
		}
		return
	}

	report := anduril.Reproduce(target, anduril.Options{
		Strategy:  anduril.Strategy(*strategy),
		Seed:      *seed,
		MaxRounds: *maxRounds,
		Window:    *window,
		Adjust:    *adjust,
		TrackRank: true,
	})

	fmt.Printf("free run: %d log lines, %d relevant observables, %d candidate sites, %d candidate instances\n",
		report.FreeRunLogLines, report.RelevantObservables, report.CandidateSites, report.CandidateInstances)
	if *verbose {
		for _, rd := range report.RoundLog {
			injected := "no candidate occurred (window doubled)"
			if rd.Injected != nil {
				injected = fmt.Sprintf("injected %s#%d", rd.Injected.Site, rd.Injected.Occurrence)
			}
			fmt.Printf("  round %3d: window=%d rank(root)=%d %s satisfied=%v\n",
				rd.N, rd.WindowSize, rd.RootRank, injected, rd.Satisfied)
		}
	}

	if !report.Reproduced {
		fmt.Printf("NOT reproduced after %d rounds (%.2fs)\n", report.Rounds, report.Elapsed.Seconds())
		os.Exit(1)
	}
	fmt.Printf("REPRODUCED in %d rounds (%.2fs)\n", report.Rounds, report.Elapsed.Seconds())
	fmt.Println(anduril.Script(report))

	if anduril.Verify(target, *report.Script, report.ScriptSeed) {
		fmt.Println("script verified: deterministic replay satisfies the oracle")
	} else {
		fmt.Println("warning: script replay did not satisfy the oracle under a fresh seed")
	}
	if *scriptOut != "" {
		writeScript(*scriptOut, func() (*core.ScriptFile, error) { return core.ScriptOf(report) })
	}
}

func writeScript(path string, build func() (*core.ScriptFile, error)) {
	script, err := build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "anduril: %v\n", err)
		os.Exit(1)
	}
	data, err := script.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "anduril: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "anduril: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("reproduction script written to %s\n", path)
}
