// Command anduril reproduces one of the dataset failures from the command
// line, printing per-round progress and the final deterministic
// reproduction script.
//
// Usage:
//
//	anduril -list
//	anduril -failure f17 [-strategy full-feedback] [-seed 1] [-max-rounds 500] [-window 10] [-adjust 1] [-v]
//	anduril -failure f3 -trace run.trace.jsonl     # structured JSONL trace of the search
//	anduril -failure f3 -trace - | trace -stats -  # '-' streams the trace to stdout
//	anduril -failure f3 -checkpoint ck.json        # checkpoint the search every 10 rounds
//	anduril -failure f3 -checkpoint ck.json -resume  # continue an interrupted search
//	anduril -failure f23 -fault-classes=env,site   # widen the search to environment faults
//	anduril -failure f26                           # dyn anti-entropy failure (convergence oracle)
//	anduril -failure f30                           # combined-fault failure (searched as fault pairs)
//	anduril -failure f32                           # partial-failure root cause (torn rename)
//	anduril -failure f1 -fault-classes=site,partial  # widen a site search to partial failures
//	anduril -failure f17 -addressing=path          # path-sensitive injection addressing
//
// Exit codes: 0 = reproduced (or an informational command), 1 = internal
// error, 2 = usage error, 3 = search exhausted without reproducing,
// 4 = search interrupted (continue it with -resume).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"anduril"
	"anduril/internal/core"
	"anduril/internal/trace"
)

// out carries the human-readable progress output. It is stdout unless
// -trace - claims stdout for the JSONL stream, in which case the progress
// moves to stderr so `anduril -trace - | trace -` stays clean.
var out io.Writer = os.Stdout

// Exit codes. Distinct codes let scripts tell "the search ran and the
// failure did not reproduce" (a result) from "the tool itself failed"
// (a defect) from "the search was interrupted" (resumable).
const (
	exitOK            = 0
	exitInternal      = 1
	exitUsage         = 2
	exitNotReproduced = 3
	exitInterrupted   = 4
)

// fail prints an internal error and exits with exitInternal.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "anduril: "+format+"\n", args...)
	os.Exit(exitInternal)
}

// usageErr prints a usage error and exits with exitUsage.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "anduril: "+format+"\n", args...)
	os.Exit(exitUsage)
}

func main() {
	var (
		list      = flag.Bool("list", false, "list the dataset failures and exit")
		listStrat = flag.Bool("list-strategies", false, "list the registered exploration strategies and exit")
		failure   = flag.String("failure", "", "dataset failure to reproduce (f1..f34 or issue id)")
		strategy  = flag.String("strategy", string(anduril.FullFeedback), "exploration strategy (see -list-strategies)")
		seed      = flag.Int64("seed", 1, "master seed (round r runs with seed+r)")
		maxRounds = flag.Int("max-rounds", 500, "round cap (the paper's 24-hour analog)")
		window    = flag.Int("window", 10, "initial flexible-window size k")
		adjust    = flag.Int("adjust", 1, "observable priority adjustment s")
		verbose   = flag.Bool("v", false, "print every round")
		iterative = flag.Int("iterative", 0, "search for up to N causally-independent faults")
		scriptOut = flag.String("script-out", "", "write the reproduction script as JSON to this file")
		dotOut    = flag.String("graph-dot", "", "write the static causal graph (Graphviz) to this file")
		traceOut  = flag.String("trace", "", "write a JSONL explorer trace to this file ('-' = stdout, for piping into cmd/trace)")
		ckptPath  = flag.String("checkpoint", "", "checkpoint the search state to this file (atomic writes)")
		ckptEvery = flag.Int("checkpoint-every", 10, "checkpoint every N rounds (with -checkpoint)")
		resume    = flag.Bool("resume", false, "resume an interrupted search from -checkpoint")
		stopAfter = flag.Int("stop-after", 0, "interrupt the search after round N (exit 4; 0 = run to completion)")
		classes   = flag.String("fault-classes", "", "comma-separated fault classes to search: site, env, pair, partial (default: the failure's own classes)")
		addrMode  = flag.String("addressing", "", "injection addressing mode: occurrence (default) or path")
	)
	flag.Parse()

	if *maxRounds <= 0 {
		usageErr("-max-rounds must be a positive round cap (got %d)", *maxRounds)
	}
	if *window <= 0 {
		usageErr("-window must be a positive initial window size (got %d)", *window)
	}
	if *adjust <= 0 {
		usageErr("-adjust must be a positive priority adjustment (got %d)", *adjust)
	}
	if *ckptEvery <= 0 {
		usageErr("-checkpoint-every must be a positive round interval (got %d)", *ckptEvery)
	}
	if *stopAfter < 0 {
		usageErr("-stop-after must be a round number, or 0 to disable (got %d)", *stopAfter)
	}
	if *resume && *ckptPath == "" {
		usageErr("-resume requires -checkpoint to name the checkpoint file")
	}
	var faultClasses []string
	if *classes != "" {
		for _, c := range strings.Split(*classes, ",") {
			c = strings.TrimSpace(c)
			if !anduril.ValidFaultClass(c) {
				usageErr("-fault-classes: unknown class %q (valid: %s, %s, %s, %s)", c, anduril.ClassSite, anduril.ClassEnv, anduril.ClassPair, anduril.ClassPartial)
			}
			faultClasses = append(faultClasses, c)
		}
	}
	if !anduril.ValidAddressing(*addrMode) {
		usageErr("-addressing: unknown mode %q (valid: %s, %s)", *addrMode, anduril.AddrOccurrence, anduril.AddrPath)
	}
	if *iterative > 1 && (*ckptPath != "" || *resume) {
		usageErr("-checkpoint/-resume are not supported with -iterative (each pass re-bakes the workload)")
	}

	if *list {
		fmt.Printf("%-5s %-10s %-11s %s\n", "id", "issue", "system", "description")
		for _, info := range anduril.DatasetCatalog() {
			fmt.Printf("%-5s %-10s %-11s %s\n", info.ID, info.Issue, info.System, info.Description)
		}
		return
	}
	if *listStrat {
		for _, s := range anduril.Strategies() {
			fmt.Println(s)
		}
		return
	}
	if *failure == "" {
		fmt.Fprintln(os.Stderr, "anduril: -failure or -list required")
		flag.Usage()
		os.Exit(2)
	}
	if !anduril.StrategyRegistered(anduril.Strategy(*strategy)) {
		fmt.Fprintf(os.Stderr, "anduril: unknown strategy %q; valid strategies: %s\n",
			*strategy, strategyNames())
		os.Exit(2)
	}

	var sink *trace.Writer
	if *traceOut != "" {
		w := io.Writer(os.Stdout)
		if *traceOut == "-" {
			out = os.Stderr
		} else {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			w = f
		}
		sink = trace.NewWriter(w)
		defer func() {
			if err := sink.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "anduril: trace: %v\n", err)
			}
		}()
	}

	target, err := anduril.Dataset(*failure)
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(out, "reproducing %s (%s) on %s: %s\n", target.ID, target.Issue, target.System, target.Description)

	if *dotOut != "" {
		dot := target.Analysis.Graph.DOT(target.ID, 400)
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(out, "causal graph written to %s (%d nodes, %d edges)\n",
			*dotOut, target.Analysis.Graph.NumNodes(), target.Analysis.Graph.NumEdges())
	}

	opts := anduril.Options{
		Strategy: anduril.Strategy(*strategy), Seed: *seed,
		MaxRounds: *maxRounds, Window: *window, Adjust: *adjust,
		Checkpoint: *ckptPath, CheckpointEvery: *ckptEvery,
		StopAfterRound: *stopAfter, FaultClasses: faultClasses,
		Addressing: anduril.Addressing(*addrMode),
	}
	if sink != nil {
		opts.Trace = sink
	}

	if *iterative > 1 {
		iter := anduril.ReproduceIterative(target, opts, *iterative)
		if !iter.Reproduced {
			fmt.Fprintf(out, "NOT reproduced after %d passes\n", len(iter.Reports))
			os.Exit(exitNotReproduced)
		}
		fmt.Fprintf(out, "REPRODUCED with %d faults: %v\n", len(iter.Scripts), iter.Scripts)
		if *scriptOut != "" {
			writeScript(*scriptOut, func() (*core.ScriptFile, error) { return core.ScriptOfIter(iter) })
		}
		return
	}

	opts.TrackRank = true
	var report *anduril.Report
	if *resume {
		report, err = anduril.Resume(target, opts, *ckptPath)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(out, "resumed search from %s\n", *ckptPath)
	} else {
		report = anduril.Reproduce(target, opts)
	}
	if report.Error != "" {
		fail("search failed: %s", report.Error)
	}
	if report.CheckpointError != "" {
		fmt.Fprintf(os.Stderr, "anduril: warning: checkpointing stopped: %s\n", report.CheckpointError)
	}

	fmt.Fprintf(out, "free run: %d log lines, %d relevant observables, %d candidate sites, %d candidate instances\n",
		report.FreeRunLogLines, report.RelevantObservables, report.CandidateSites, report.CandidateInstances)
	if *verbose {
		for _, rd := range report.RoundLog {
			injected := "no candidate occurred (window doubled)"
			if rd.Injected != nil {
				injected = fmt.Sprintf("injected %s#%d", rd.Injected.Site, rd.Injected.Occurrence)
				if rd.Injected.Path != "" {
					injected = "injected " + rd.Injected.Path
				}
			}
			fmt.Fprintf(out, "  round %3d: window=%d rank(root)=%d %s satisfied=%v\n",
				rd.N, rd.WindowSize, rd.RootRank, injected, rd.Satisfied)
		}
	}

	if report.Interrupted {
		fmt.Fprintf(out, "INTERRUPTED after %d rounds (%.2fs); continue with -resume -checkpoint %s\n",
			report.Rounds, report.Elapsed.Seconds(), *ckptPath)
		os.Exit(exitInterrupted)
	}
	if !report.Reproduced {
		fmt.Fprintf(out, "NOT reproduced after %d rounds (%.2fs)\n", report.Rounds, report.Elapsed.Seconds())
		os.Exit(exitNotReproduced)
	}
	fmt.Fprintf(out, "REPRODUCED in %d rounds (%.2fs)\n", report.Rounds, report.Elapsed.Seconds())
	fmt.Fprintln(out, anduril.Script(report))

	if anduril.Verify(target, *report.Script, report.ScriptSeed) {
		fmt.Fprintln(out, "script verified: deterministic replay satisfies the oracle")
	} else {
		fmt.Fprintln(out, "warning: script replay did not satisfy the oracle under a fresh seed")
	}
	if *scriptOut != "" {
		writeScript(*scriptOut, func() (*core.ScriptFile, error) { return core.ScriptOf(report) })
	}
}

func strategyNames() string {
	names := ""
	for i, s := range anduril.Strategies() {
		if i > 0 {
			names += ", "
		}
		names += string(s)
	}
	return names
}

func writeScript(path string, build func() (*core.ScriptFile, error)) {
	script, err := build()
	if err != nil {
		fail("%v", err)
	}
	data, err := script.Marshal()
	if err != nil {
		fail("%v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(out, "reproduction script written to %s\n", path)
}
