// Command anduril-server runs the reproduction daemon: an HTTP service
// that accepts reproduction jobs, journals them durably, executes them
// on a bounded worker pool with checkpoint/resume, and survives kill -9
// without losing a job or changing a result (see internal/server).
//
//	anduril-server -data-dir /var/lib/anduril [-addr :8477] [-workers 4]
//
// The daemon drains gracefully on SIGINT/SIGTERM: submissions are
// rejected, running searches are interrupted at a round boundary and
// checkpoint their exact position, and the process exits once every
// in-flight job has persisted its state. A subsequent start with the
// same -data-dir re-admits and finishes everything.
//
// Exit codes: 0 clean shutdown after a signal; 1 fatal runtime error
// (journal unreadable, listen failure); 2 flag or validation error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anduril/internal/server"
)

// Exit codes, mirroring the anduril CLI's discipline of separating
// usage mistakes (2) from runtime failures (1).
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

// flagConfig is the parsed flag set, kept separate from server.Config so
// validation is a pure, table-testable function.
type flagConfig struct {
	addr            string
	dataDir         string
	workers         int
	queue           int
	maxAttempts     int
	checkpointEvery int
}

// validate rejects flag combinations the server cannot run with. Every
// rejection is a usage error (exit 2), reported before any state is
// touched.
func (c flagConfig) validate() error {
	if c.dataDir == "" {
		return fmt.Errorf("-data-dir is required (the daemon's durable job journal lives there)")
	}
	if c.addr == "" {
		return fmt.Errorf("-addr must name a listen address")
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = one per CPU), got %d", c.workers)
	}
	if c.queue <= 0 {
		return fmt.Errorf("-queue must be a positive queued-job cap, got %d", c.queue)
	}
	if c.maxAttempts <= 0 {
		return fmt.Errorf("-max-attempts must be positive, got %d", c.maxAttempts)
	}
	if c.checkpointEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be a positive round interval, got %d", c.checkpointEvery)
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is main minus the process boundary: parse, validate, serve until
// stop (nil = OS signals) fires, drain, exit code. Tests drive it with
// their own stop channel.
func run(args []string, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("anduril-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c flagConfig
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8477", "listen address")
	fs.StringVar(&c.dataDir, "data-dir", "", "state directory for the durable job journal (required)")
	fs.IntVar(&c.workers, "workers", 0, "concurrent job executions (0 = one per CPU)")
	fs.IntVar(&c.queue, "queue", 256, "queued-job cap; beyond it submissions shed with 429")
	fs.IntVar(&c.maxAttempts, "max-attempts", 3, "executions of a transiently-failing job before it fails for good")
	fs.IntVar(&c.checkpointEvery, "checkpoint-every", 5, "rounds between search checkpoint writes")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "anduril-server: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	if err := c.validate(); err != nil {
		fmt.Fprintf(stderr, "anduril-server: %v\n", err)
		return exitUsage
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}
	srv, err := server.Open(server.Config{
		DataDir:         c.dataDir,
		Workers:         c.workers,
		QueueCap:        c.queue,
		MaxAttempts:     c.maxAttempts,
		CheckpointEvery: c.checkpointEvery,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "anduril-server: %v\n", err)
		return exitRuntime
	}
	defer srv.Shutdown()

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		fmt.Fprintf(stderr, "anduril-server: %v\n", err)
		return exitRuntime
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logf("anduril-server: serving on %s (journal: %s)", ln.Addr(), c.dataDir)

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case <-sig:
		case err := <-serveErr:
			fmt.Fprintf(stderr, "anduril-server: %v\n", err)
			return exitRuntime
		}
	} else {
		select {
		case <-stop:
		case err := <-serveErr:
			fmt.Fprintf(stderr, "anduril-server: %v\n", err)
			return exitRuntime
		}
	}

	// Drain: stop accepting HTTP first, then interrupt and persist jobs.
	logf("anduril-server: draining")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "anduril-server: http shutdown: %v\n", err)
	}
	srv.Shutdown()
	logf("anduril-server: drained cleanly")
	return exitOK
}
