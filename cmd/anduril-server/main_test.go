package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Flag discipline: every invalid invocation is exit 2 with a message
// naming the offending flag; nothing touches disk or the network first.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     flagConfig
		wantErr string // "" = valid
	}{
		{"valid", flagConfig{addr: ":0", dataDir: "/tmp/x", queue: 1, maxAttempts: 1, checkpointEvery: 1}, ""},
		{"zero workers is per-CPU", flagConfig{addr: ":0", dataDir: "/tmp/x", workers: 0, queue: 8, maxAttempts: 3, checkpointEvery: 5}, ""},
		{"missing data dir", flagConfig{addr: ":0", queue: 1, maxAttempts: 1, checkpointEvery: 1}, "-data-dir"},
		{"empty addr", flagConfig{dataDir: "/tmp/x", queue: 1, maxAttempts: 1, checkpointEvery: 1}, "-addr"},
		{"negative workers", flagConfig{addr: ":0", dataDir: "/tmp/x", workers: -1, queue: 1, maxAttempts: 1, checkpointEvery: 1}, "-workers"},
		{"zero queue", flagConfig{addr: ":0", dataDir: "/tmp/x", queue: 0, maxAttempts: 1, checkpointEvery: 1}, "-queue"},
		{"negative queue", flagConfig{addr: ":0", dataDir: "/tmp/x", queue: -5, maxAttempts: 1, checkpointEvery: 1}, "-queue"},
		{"zero attempts", flagConfig{addr: ":0", dataDir: "/tmp/x", queue: 1, maxAttempts: 0, checkpointEvery: 1}, "-max-attempts"},
		{"zero checkpoint interval", flagConfig{addr: ":0", dataDir: "/tmp/x", queue: 1, maxAttempts: 1, checkpointEvery: 0}, "-checkpoint-every"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validate() = %v, want error naming %s", err, c.wantErr)
			}
		})
	}
}

func TestRunExitCodes(t *testing.T) {
	closed := make(chan struct{})
	close(closed)

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-bogus"}, exitUsage},
		{"missing data dir", []string{"-addr", ":0"}, exitUsage},
		{"bad queue", []string{"-data-dir", t.TempDir(), "-queue", "-1"}, exitUsage},
		{"positional junk", []string{"-data-dir", t.TempDir(), "extra"}, exitUsage},
		{"clean start and drain", []string{"-data-dir", t.TempDir(), "-addr", "127.0.0.1:0"}, exitOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if got := run(c.args, &stderr, closed); got != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, got, c.want, stderr.String())
			}
		})
	}
}

// A data dir that cannot host a journal is a runtime failure (1), not a
// usage error: the flags were fine, the environment was not.
func TestRunJournalFailureIsRuntimeError(t *testing.T) {
	dir := t.TempDir()
	// Occupy the jobs path with a FILE so MkdirAll fails.
	blocker := filepath.Join(dir, "jobs")
	if err := writeFile(blocker, "not a directory"); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	closed := make(chan struct{})
	close(closed)
	if got := run([]string{"-data-dir", dir, "-addr", "127.0.0.1:0"}, &stderr, closed); got != exitRuntime {
		t.Fatalf("run = %d, want %d\nstderr: %s", got, exitRuntime, stderr.String())
	}
}

// A taken port is likewise runtime, not usage.
func TestRunListenFailureIsRuntimeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var stderr bytes.Buffer
	closed := make(chan struct{})
	close(closed)
	args := []string{"-data-dir", t.TempDir(), "-addr", ln.Addr().String()}
	if got := run(args, &stderr, closed); got != exitRuntime {
		t.Fatalf("run = %d, want %d\nstderr: %s", got, exitRuntime, stderr.String())
	}
}

// writeFile is a tiny helper kept local so the test file stays
// dependency-free.
func writeFile(path, contents string) error {
	return os.WriteFile(path, []byte(contents), 0o644)
}
