// Command tables regenerates the tables and figures of the paper's
// evaluation section against this reproduction.
//
// Usage:
//
//	tables                 # everything, parallel across all CPUs
//	tables -table 2        # one table (1-8, 9 = ablations)
//	tables -figure 6       # Figure 6
//	tables -max-rounds 500 -seed 1
//	tables -j 1            # serial (identical output, one worker)
//	tables -no-time        # mask wall-time cells for byte-stable output
//	tables -resume-dir d   # persist per-cell reports; re-runs skip done cells
//	tables -timeout 10m    # cancel in-flight cells at the deadline
//
// Every experiment cell is a hermetic, seeded run, so -j N and -j 1
// render identical deterministic content for the same seed; only the
// measured wall-time cells vary run to run (mask them with -no-time to
// diff outputs byte for byte). With -resume-dir, a run killed by a crash
// or -timeout keeps its finished cells on disk; re-running the same
// command completes only the missing ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"anduril/internal/eval"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate one table (1-8, 9 = ablations); 0 = all")
		figure    = flag.Int("figure", 0, "regenerate one figure (6); 0 = all")
		seed      = flag.Int64("seed", 1, "master seed")
		maxRounds = flag.Int("max-rounds", 500, "round cap (the paper's 24-hour analog)")
		fig6      = flag.String("fig6-failure", "f4", "failure for the Figure 6 trajectory")
		workers   = flag.Int("j", 0, "experiment-cell workers: 0 = one per CPU, 1 = serial")
		noTime    = flag.Bool("no-time", false, "render wall-time cells as '*' (byte-stable output)")
		traceDir  = flag.String("trace-dir", "", "write one JSONL explorer trace per experiment cell into this directory")
		resumeDir = flag.String("resume-dir", "", "persist per-cell reports in this directory and skip cells already completed there")
		timeout   = flag.Duration("timeout", 0, "cancel outstanding experiment cells after this duration (0 = none)")
	)
	flag.Parse()

	opt := eval.Options{
		Seed: *seed, MaxRounds: *maxRounds, Workers: *workers,
		NoTiming: *noTime, TraceDir: *traceDir, ResumeDir: *resumeDir,
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opt.Context = ctx
	}
	all := *table == 0 && *figure == 0

	type gen struct {
		id  int
		fn  func() (*eval.Table, error)
		fig bool
	}
	gens := []gen{
		{1, func() (*eval.Table, error) { return eval.Table1FaultSites(opt) }, false},
		{2, func() (*eval.Table, error) { return eval.Table2Efficacy(opt, nil) }, false},
		{3, func() (*eval.Table, error) { return eval.Table3Sensitivity(opt) }, false},
		{4, func() (*eval.Table, error) { return eval.Table4Performance(opt) }, false},
		{5, func() (*eval.Table, error) { return eval.Table5Failures(opt) }, false},
		{6, func() (*eval.Table, error) { return eval.Table6NewRootCauses(opt) }, false},
		{7, func() (*eval.Table, error) { return eval.Table7StaticAnalysis(opt) }, false},
		{8, func() (*eval.Table, error) { return eval.Table8Runtime(opt) }, false},
		{9, func() (*eval.Table, error) { return eval.AblationTable(opt) }, false},
		{6, func() (*eval.Table, error) { return eval.Figure6RankTrajectory(opt, *fig6) }, true},
	}
	for _, g := range gens {
		want := all || (!g.fig && *table == g.id) || (g.fig && *figure == g.id)
		if !want {
			continue
		}
		t, err := g.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
	}
}
