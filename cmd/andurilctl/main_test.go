package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"anduril/internal/server"
)

// startDaemon runs an in-process daemon behind a test HTTP server, so
// the ctl commands are exercised end to end without binding real ports.
func startDaemon(t *testing.T) (base string) {
	t.Helper()
	s, err := server.Open(server.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return ts.URL
}

func runCtl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCtlSubmitWaitStatusReportTrace(t *testing.T) {
	base := startDaemon(t)
	code, out, errb := runCtl(t, "submit", "-server", base, "-failure", "f4", "-wait")
	if code != exitOK {
		t.Fatalf("submit -wait = %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "accepted ") || !strings.Contains(out, "done") {
		t.Fatalf("submit output: %s", out)
	}
	key := server.Spec{Failure: "f4"}.Key()

	// A repeat submission dedupes.
	code, out, _ = runCtl(t, "submit", "-server", base, "-failure", "f4")
	if code != exitOK || !strings.Contains(out, "deduped "+key) {
		t.Fatalf("repeat submit = %d: %s", code, out)
	}

	code, out, _ = runCtl(t, "status", "-server", base, key)
	if code != exitOK || !strings.Contains(out, `"state": "done"`) {
		t.Fatalf("status = %d: %s", code, out)
	}
	code, out, _ = runCtl(t, "list", "-server", base)
	if code != exitOK || !strings.Contains(out, "done") || !strings.Contains(out, "f4") {
		t.Fatalf("list = %d: %s", code, out)
	}
	code, out, _ = runCtl(t, "report", "-server", base, "-canonical", key)
	if code != exitOK || !strings.Contains(out, `"Reproduced"`) {
		t.Fatalf("report = %d: %s", code, out)
	}
	code, out, _ = runCtl(t, "trace", "-server", base, key)
	if code != exitOK || !strings.Contains(out, `"event":"outcome"`) {
		t.Fatalf("trace = %d: %s", code, out)
	}
	code, out, _ = runCtl(t, "wait", "-server", base, key)
	if code != exitOK || !strings.Contains(out, "done") {
		t.Fatalf("wait = %d: %s", code, out)
	}
	code, out, _ = runCtl(t, "health", "-server", base)
	if code != exitOK || !strings.Contains(out, "ok") || !strings.Contains(out, "ready") {
		t.Fatalf("health = %d: %s", code, out)
	}
}

func TestCtlUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"submit"},                               // missing -failure
		{"status"},                               // missing key
		{"report"},                               // missing key
		{"wait"},                                 // missing keys
		{"soak", "-jobs", "0"},                   // bad count
		{"soak", "-submit-only", "-verify-only"}, // exclusive
	}
	for _, args := range cases {
		if code, _, _ := runCtl(t, args...); code != exitUsage {
			t.Fatalf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestCtlServerUnreachable(t *testing.T) {
	code, _, errb := runCtl(t, "status", "-server", "http://127.0.0.1:1", "abc")
	if code != exitRuntime || errb == "" {
		t.Fatalf("unreachable server = %d (%s), want %d with message", code, errb, exitRuntime)
	}
}

// The derived soak set is deterministic — phase-split crash harnesses
// depend on re-deriving the identical set — and the submission counts
// sum to -jobs.
func TestSoakSetDeterministic(t *testing.T) {
	a := soakSet(7, 500, 24)
	b := soakSet(7, 500, 24)
	if len(a) != len(b) {
		t.Fatalf("set sizes differ: %d vs %d", len(a), len(b))
	}
	total := 0
	for i := range a {
		if a[i].key != b[i].key || a[i].submissions != b[i].submissions {
			t.Fatalf("job %d differs across derivations", i)
		}
		total += a[i].submissions
	}
	if total != 500 {
		t.Fatalf("submissions sum to %d, want 500", total)
	}
	if len(soakSet(8, 100, 24)) == 0 || soakSet(8, 100, 24)[0].key == a[0].key {
		t.Fatal("different seeds derived the same first job")
	}
}

// A small end-to-end soak: submissions overlap onto distinct jobs
// (dedupe at scale), every result byte-matches a serial run.
func TestCtlSoakSmall(t *testing.T) {
	base := startDaemon(t)
	code, out, errb := runCtl(t, "soak", "-server", base, "-jobs", "40", "-distinct", "5", "-seed", "3", "-timeout", "5m")
	if code != exitOK {
		t.Fatalf("soak = %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "soak: OK") {
		t.Fatalf("soak output: %s", out)
	}
}

// Phase-split soak: submit-only, then verify-only against a daemon that
// restarted in between — the crash harness's exact shape.
func TestCtlSoakPhaseSplitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := server.Open(server.Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, out, errb := runCtl(t, "soak", "-server", ts1.URL, "-jobs", "20", "-distinct", "4", "-seed", "5", "-submit-only")
	if code != exitOK {
		t.Fatalf("submit-only = %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	// Drain mid-work and restart on the same journal.
	s1.Shutdown()
	ts1.Close()
	s2, err := server.Open(server.Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Shutdown()
	}()
	code, out, errb = runCtl(t, "soak", "-server", ts2.URL, "-jobs", "20", "-distinct", "4", "-seed", "5", "-verify-only", "-timeout", "5m")
	if code != exitOK {
		t.Fatalf("verify-only after restart = %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "soak: OK") {
		t.Fatalf("verify output: %s", out)
	}
}
