// Command andurilctl is the client for anduril-server: submit and watch
// reproduction jobs, fetch reports and traces, and drive the soak/crash
// verification gates.
//
//	andurilctl submit -failure f4 [-seed 2] [-wait]
//	andurilctl status <key>
//	andurilctl list
//	andurilctl report [-canonical] <key>
//	andurilctl trace [-follow] <key>
//	andurilctl wait [-timeout 5m] <key>...
//	andurilctl health
//	andurilctl soak -jobs 1000 [-distinct 40] [-seed 1]
//
// Every command takes -server (default http://127.0.0.1:8477).
//
// soak is the determinism gate: it derives a deterministic mixed job set
// from its seed, submits all -jobs submissions (the set is smaller — the
// overlap deliberately exercises content-addressed dedupe), waits for
// every job to finish, then re-executes each distinct spec serially
// in-process and byte-compares canonical reports and traces. -submit-only
// and -verify-only split the phases so a crash harness can kill and
// restart the daemon in between: verification re-derives the same job
// set from the same seed, so lost or duplicated jobs are detected, not
// just wrong results.
//
// Exit codes: 0 success; 1 runtime failure (unreachable server, failed
// job, verification mismatch, timeout); 2 usage error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/server"
	"anduril/internal/trace"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return exitUsage
	}
	cmd, rest := args[0], args[1:]
	c := &ctl{stdout: stdout, stderr: stderr}
	switch cmd {
	case "submit":
		return c.submit(rest)
	case "status":
		return c.status(rest)
	case "list":
		return c.list(rest)
	case "report":
		return c.report(rest)
	case "trace":
		return c.trace(rest)
	case "wait":
		return c.wait(rest)
	case "health":
		return c.health(rest)
	case "soak":
		return c.soak(rest)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return exitOK
	default:
		fmt.Fprintf(stderr, "andurilctl: unknown command %q\n", cmd)
		usage(stderr)
		return exitUsage
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: andurilctl <submit|status|list|report|trace|wait|health|soak> [flags]")
}

type ctl struct {
	stdout io.Writer
	stderr io.Writer
	base   string
}

// flags returns a command's flag set with the shared -server flag bound.
func (c *ctl) flags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet("andurilctl "+name, flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	fs.StringVar(&c.base, "server", "http://127.0.0.1:8477", "anduril-server base URL")
	return fs
}

func (c *ctl) errorf(format string, args ...any) int {
	fmt.Fprintf(c.stderr, "andurilctl: "+format+"\n", args...)
	return exitRuntime
}

// --- HTTP plumbing -------------------------------------------------------

type submitResponse struct {
	Job     server.Job `json:"job"`
	Deduped bool       `json:"deduped"`
}

// postJob submits a spec, obeying Retry-After on 429 until the deadline.
func (c *ctl) postJob(spec server.Spec, deadline time.Time) (submitResponse, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return submitResponse{}, err
	}
	for {
		resp, err := http.Post(c.base+"/jobs", "application/json", bytes.NewReader(raw))
		if err != nil {
			return submitResponse{}, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return submitResponse{}, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var sr submitResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				return submitResponse{}, err
			}
			return sr, nil
		case http.StatusTooManyRequests:
			secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if secs <= 0 {
				secs = 1
			}
			if time.Now().Add(time.Duration(secs) * time.Second).After(deadline) {
				return submitResponse{}, fmt.Errorf("server overloaded past deadline: %s", body)
			}
			time.Sleep(time.Duration(secs) * time.Second)
		default:
			return submitResponse{}, fmt.Errorf("submit: %s: %s", resp.Status, body)
		}
	}
}

func (c *ctl) getJSON(path string, v any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return json.Unmarshal(body, v)
}

func (c *ctl) getRaw(path string) ([]byte, error) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}

// waitTerminal polls until every key reaches a terminal state. Returns
// the records by key.
func (c *ctl) waitTerminal(keys []string, deadline time.Time) (map[string]server.Job, error) {
	done := map[string]server.Job{}
	for {
		pending := 0
		for _, key := range keys {
			if _, ok := done[key]; ok {
				continue
			}
			var job server.Job
			if err := c.getJSON("/jobs/"+key, &job); err != nil {
				return nil, err
			}
			if job.Terminal() {
				done[key] = job
			} else {
				pending++
			}
		}
		if pending == 0 {
			return done, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%d jobs still unfinished at deadline", pending)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// --- simple commands -----------------------------------------------------

func (c *ctl) submit(args []string) int {
	fs := c.flags("submit")
	var spec server.Spec
	var classes string
	var doWait bool
	var timeout time.Duration
	fs.StringVar(&spec.Failure, "failure", "", "failure id to reproduce (required)")
	fs.StringVar(&spec.Strategy, "strategy", "", "exploration strategy (default full-feedback)")
	fs.Int64Var(&spec.Seed, "seed", 0, "master seed (default 1)")
	fs.IntVar(&spec.MaxRounds, "max-rounds", 0, "round cap (default 500)")
	fs.IntVar(&spec.Window, "window", 0, "initial flexible-window size (default 10)")
	fs.IntVar(&spec.Adjust, "adjust", 0, "priority adjustment (default 1)")
	fs.IntVar(&spec.RunsPerRound, "runs-per-round", 0, "extra seeds per round (default 1)")
	fs.StringVar(&classes, "fault-classes", "", "comma-separated fault classes")
	fs.StringVar(&spec.Addressing, "addressing", "", "occurrence (default) or path")
	fs.BoolVar(&doWait, "wait", false, "wait for the job to finish")
	fs.DurationVar(&timeout, "timeout", 10*time.Minute, "wait deadline (with -wait)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if spec.Failure == "" {
		fmt.Fprintln(c.stderr, "andurilctl submit: -failure is required")
		return exitUsage
	}
	spec.FaultClasses = splitClasses(classes)
	sr, err := c.postJob(spec, time.Now().Add(timeout))
	if err != nil {
		return c.errorf("%v", err)
	}
	verb := "accepted"
	if sr.Deduped {
		verb = "deduped"
	}
	fmt.Fprintf(c.stdout, "%s %s (%s)\n", verb, sr.Job.Key, sr.Job.State)
	if !doWait {
		return exitOK
	}
	jobs, err := c.waitTerminal([]string{sr.Job.Key}, time.Now().Add(timeout))
	if err != nil {
		return c.errorf("%v", err)
	}
	job := jobs[sr.Job.Key]
	fmt.Fprintf(c.stdout, "%s: %s (reproduced=%v rounds=%d)\n", job.Key, job.State, job.Reproduced, job.Rounds)
	if job.State != server.StateDone {
		return exitRuntime
	}
	return exitOK
}

func splitClasses(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range bytes.Split([]byte(s), []byte(",")) {
		if t := bytes.TrimSpace(c); len(t) > 0 {
			out = append(out, string(t))
		}
	}
	return out
}

func (c *ctl) status(args []string) int {
	fs := c.flags("status")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "andurilctl status: exactly one job key required")
		return exitUsage
	}
	var job server.Job
	if err := c.getJSON("/jobs/"+fs.Arg(0), &job); err != nil {
		return c.errorf("%v", err)
	}
	enc := json.NewEncoder(c.stdout)
	enc.SetIndent("", "  ")
	enc.Encode(job)
	return exitOK
}

func (c *ctl) list(args []string) int {
	fs := c.flags("list")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	var jobs []server.Job
	if err := c.getJSON("/jobs", &jobs); err != nil {
		return c.errorf("%v", err)
	}
	for _, job := range jobs {
		fmt.Fprintf(c.stdout, "%s  %-8s %-4s seed=%d strategy=%s submissions=%d\n",
			job.Key[:16], job.State, job.Spec.Failure, job.Spec.Seed, job.Spec.Strategy, job.Submissions)
	}
	return exitOK
}

func (c *ctl) report(args []string) int {
	fs := c.flags("report")
	canonicalForm := fs.Bool("canonical", false, "wall-clock-normalized comparison form")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "andurilctl report: exactly one job key required")
		return exitUsage
	}
	path := "/jobs/" + fs.Arg(0) + "/report"
	if *canonicalForm {
		path += "?canonical=1"
	}
	raw, err := c.getRaw(path)
	if err != nil {
		return c.errorf("%v", err)
	}
	c.stdout.Write(raw)
	fmt.Fprintln(c.stdout)
	return exitOK
}

func (c *ctl) trace(args []string) int {
	fs := c.flags("trace")
	follow := fs.Bool("follow", false, "stream live events until the job finishes")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "andurilctl trace: exactly one job key required")
		return exitUsage
	}
	path := "/jobs/" + fs.Arg(0) + "/trace"
	if *follow {
		path += "?follow=1"
	}
	resp, err := http.Get(c.base + path)
	if err != nil {
		return c.errorf("%v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return c.errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	if _, err := io.Copy(c.stdout, resp.Body); err != nil {
		return c.errorf("%v", err)
	}
	return exitOK
}

func (c *ctl) wait(args []string) int {
	fs := c.flags("wait")
	timeout := fs.Duration("timeout", 10*time.Minute, "deadline")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(c.stderr, "andurilctl wait: at least one job key required")
		return exitUsage
	}
	jobs, err := c.waitTerminal(fs.Args(), time.Now().Add(*timeout))
	if err != nil {
		return c.errorf("%v", err)
	}
	code := exitOK
	for _, key := range fs.Args() {
		job := jobs[key]
		fmt.Fprintf(c.stdout, "%s: %s\n", key, job.State)
		if job.State != server.StateDone {
			code = exitRuntime
		}
	}
	return code
}

func (c *ctl) health(args []string) int {
	fs := c.flags("health")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		raw, err := c.getRaw(probe)
		if err != nil {
			return c.errorf("%s: %v", probe, err)
		}
		fmt.Fprintf(c.stdout, "%s: %s", probe, raw)
	}
	return exitOK
}

// --- soak ---------------------------------------------------------------

// soakJob is one distinct spec in the derived job set plus how many of
// the -jobs submissions land on it.
type soakJob struct {
	spec        server.Spec
	key         string
	submissions int
}

// soakSet derives the deterministic job set: `distinct` candidate specs
// from the seed (mixed failures, seeds, strategies; collisions under
// content addressing merge), then `jobs` submissions distributed over
// them by the same seed stream.
func soakSet(seed int64, jobs, distinct int) []*soakJob {
	mix := func(x uint64) uint64 {
		x += 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	strategies := []string{"full-feedback", "full-feedback", "full-feedback", "site-feedback", "random"}
	byKey := map[string]*soakJob{}
	var order []*soakJob
	ids := make([]string, 0, 34)
	for _, sc := range failures.All() {
		ids = append(ids, sc.ID)
	}
	sort.Strings(ids)
	for i := 0; i < distinct; i++ {
		x := mix(uint64(seed) + uint64(i)*0x9E3779B97F4A7C15)
		sp := server.Spec{
			Failure:  ids[x%uint64(len(ids))],
			Seed:     int64(1 + (x>>8)%3),
			Strategy: strategies[(x>>20)%uint64(len(strategies))],
		}.Normalize()
		key := sp.Key()
		if _, dup := byKey[key]; !dup {
			j := &soakJob{spec: sp, key: key}
			byKey[key] = j
			order = append(order, j)
		}
	}
	for i := 0; i < jobs; i++ {
		x := mix(uint64(seed) ^ (uint64(i)+1)*0xD1B54A32D192ED03)
		order[x%uint64(len(order))].submissions++
	}
	return order
}

func (c *ctl) soak(args []string) int {
	fs := c.flags("soak")
	jobs := fs.Int("jobs", 1000, "total submissions to make")
	distinct := fs.Int("distinct", 40, "distinct specs the submissions are drawn from")
	seed := fs.Int64("seed", 1, "seed for the derived job set")
	submitOnly := fs.Bool("submit-only", false, "submit and exit (crash harness phase 1)")
	verifyOnly := fs.Bool("verify-only", false, "wait and verify a previously-submitted set (phase 2)")
	timeout := fs.Duration("timeout", 20*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *jobs <= 0 || *distinct <= 0 {
		fmt.Fprintln(c.stderr, "andurilctl soak: -jobs and -distinct must be positive")
		return exitUsage
	}
	if *submitOnly && *verifyOnly {
		fmt.Fprintln(c.stderr, "andurilctl soak: -submit-only and -verify-only are mutually exclusive")
		return exitUsage
	}
	deadline := time.Now().Add(*timeout)
	set := soakSet(*seed, *jobs, *distinct)
	fmt.Fprintf(c.stdout, "soak: %d submissions over %d distinct jobs\n", *jobs, len(set))

	if !*verifyOnly {
		submitted := 0
		for _, j := range set {
			for n := 0; n < j.submissions; n++ {
				sr, err := c.postJob(j.spec, deadline)
				if err != nil {
					return c.errorf("submitting %s: %v", j.key[:12], err)
				}
				if sr.Job.Key != j.key {
					return c.errorf("server keyed %s as %s, client derives %s", j.spec.Failure, sr.Job.Key, j.key)
				}
				submitted++
			}
		}
		fmt.Fprintf(c.stdout, "soak: submitted %d\n", submitted)
		if *submitOnly {
			return exitOK
		}
	}

	keys := make([]string, len(set))
	for i, j := range set {
		keys[i] = j.key
	}
	records, err := c.waitTerminal(keys, deadline)
	if err != nil {
		return c.errorf("%v", err)
	}
	fmt.Fprintf(c.stdout, "soak: all %d jobs terminal\n", len(records))

	// The journal must hold exactly the derived set: a missing job was
	// lost, an extra one was duplicated or corrupted into a new key.
	var listed []server.Job
	if err := c.getJSON("/jobs", &listed); err != nil {
		return c.errorf("%v", err)
	}
	if len(listed) != len(set) {
		return c.errorf("server holds %d jobs, expected exactly %d", len(listed), len(set))
	}

	mismatches := 0
	targets := map[string]*core.Target{}
	for _, j := range set {
		job := records[j.key]
		if job.State != server.StateDone {
			c.errorf("job %s (%s seed %d): %s: %s", j.key[:12], j.spec.Failure, j.spec.Seed, job.State, job.Error)
			mismatches++
			continue
		}
		if job.Submissions != j.submissions {
			c.errorf("job %s: %d submissions journaled, %d made", j.key[:12], job.Submissions, j.submissions)
			mismatches++
		}
		wantRep, wantTrace, err := serialRun(targets, j.spec)
		if err != nil {
			return c.errorf("serial %s: %v", j.spec.Failure, err)
		}
		gotCanon, err := c.getRaw("/jobs/" + j.key + "/report?canonical=1")
		if err != nil {
			return c.errorf("%v", err)
		}
		wantCanon, err := core.CanonicalReport(wantRep)
		if err != nil {
			return c.errorf("%v", err)
		}
		if !bytes.Equal(gotCanon, wantCanon) {
			c.errorf("job %s (%s seed %d): canonical report diverged from serial run", j.key[:12], j.spec.Failure, j.spec.Seed)
			mismatches++
		}
		gotTrace, err := c.getRaw("/jobs/" + j.key + "/trace")
		if err != nil {
			return c.errorf("%v", err)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			c.errorf("job %s (%s seed %d): trace diverged from serial run (%d vs %d bytes)",
				j.key[:12], j.spec.Failure, j.spec.Seed, len(gotTrace), len(wantTrace))
			mismatches++
		}
	}
	if mismatches > 0 {
		return c.errorf("soak FAILED: %d divergences across %d jobs", mismatches, len(set))
	}
	fmt.Fprintf(c.stdout, "soak: OK — %d jobs byte-identical to serial runs\n", len(set))
	return exitOK
}

// serialRun executes a spec in-process the way a plain serial caller
// would, returning the report and exact trace bytes — the daemon's
// ground truth.
func serialRun(targets map[string]*core.Target, spec server.Spec) (*core.Report, []byte, error) {
	t, ok := targets[spec.Failure]
	if !ok {
		sc, found := failures.ByID(spec.Failure)
		if !found {
			return nil, nil, fmt.Errorf("unknown failure %q", spec.Failure)
		}
		var err error
		t, err = sc.BuildTarget()
		if err != nil {
			return nil, nil, err
		}
		targets[spec.Failure] = t
	}
	opts := spec.Normalize().Options()
	mem := &trace.Memory{}
	opts.Trace = mem
	rep := core.Reproduce(t, opts)
	var buf []byte
	for i := range mem.Events {
		buf = trace.AppendEvent(buf, &mem.Events[i])
		buf = append(buf, '\n')
	}
	return rep, buf, nil
}
