// Command trace pretty-prints, filters, aggregates and diffs the JSONL
// explorer traces emitted by cmd/anduril -trace and cmd/tables -trace-dir.
//
// Usage:
//
//	trace run.trace.jsonl                 # pretty-print every event
//	trace -site zk.election.accept run.trace.jsonl
//	trace -round 3 run.trace.jsonl
//	trace -event feedback run.trace.jsonl
//	trace -stats run.trace.jsonl          # aggregate counters/histograms
//	trace -diff a.trace.jsonl b.trace.jsonl
//	anduril -failure f3 -trace - | trace -  # read from stdin
//
// Filters compose (AND). -diff compares two traces event by event and
// exits 1 on the first divergence, so it doubles as a determinism check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"anduril/internal/trace"
)

func main() {
	var (
		site    = flag.String("site", "", "only events touching this fault site (substring match)")
		round   = flag.Int("round", 0, "only events of this round (free_run/outcome always shown)")
		event   = flag.String("event", "", "only events of this type (free_run, round, decision, injected, env_injected, window_grow, feedback, inconclusive, outcome)")
		stats   = flag.Bool("stats", false, "print aggregate counters and histograms instead of events")
		diff    = flag.Bool("diff", false, "compare two trace files event by event; exit 1 if they differ")
		maxDiff = flag.Int("max-diffs", 10, "divergences to report in -diff mode")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two trace files"))
		}
		a, err := readTrace(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		b, err := readTrace(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		ds := trace.Diff(a, b, *maxDiff)
		if len(ds) == 0 {
			fmt.Printf("identical: %d events\n", len(a))
			return
		}
		fmt.Printf("traces differ (%d vs %d events):\n", len(a), len(b))
		for _, d := range ds {
			fmt.Println(d)
		}
		os.Exit(1)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "trace: one trace file required ('-' = stdin)")
		flag.Usage()
		os.Exit(2)
	}
	events, err := readTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *stats {
		printStats(trace.AggregateStats(events))
		return
	}

	shown := 0
	for i := range events {
		ev := &events[i]
		if !match(ev, *site, *round, trace.EventType(*event)) {
			continue
		}
		fmt.Println(render(ev))
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(os.Stderr, "trace: no events match the filters")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "trace: %v\n", err)
	os.Exit(1)
}

func readTrace(path string) ([]trace.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadAll(r)
}

// match applies the -site/-round/-event filters. The stream's frame
// events (free_run, outcome) carry no round and survive a -round filter
// so filtered output stays self-describing.
func match(ev *trace.Event, site string, round int, typ trace.EventType) bool {
	if typ != "" && ev.Type != typ {
		return false
	}
	if round > 0 && ev.Round != round && ev.Type != trace.FreeRun && ev.Type != trace.Outcome {
		return false
	}
	if site != "" && !touchesSite(ev, site) {
		return false
	}
	return true
}

func touchesSite(ev *trace.Event, site string) bool {
	if strings.Contains(ev.Site, site) {
		return true
	}
	for _, s := range ev.Sites {
		if strings.Contains(s.Site, site) {
			return true
		}
	}
	for _, s := range ev.Top {
		if strings.Contains(s.Site, site) {
			return true
		}
	}
	for _, c := range ev.Candidates {
		if strings.Contains(c.Site, site) {
			return true
		}
	}
	// A pair injection touches both member sites, not just the pseudo-site.
	for _, m := range ev.Members {
		if strings.Contains(m.Site, site) {
			return true
		}
	}
	for _, d := range ev.Deltas {
		if strings.Contains(d.Site, site) {
			return true
		}
	}
	return false
}

// render formats one event as a human-readable line (or a few, for the
// snapshot events).
func render(ev *trace.Event) string {
	var b strings.Builder
	switch ev.Type {
	case trace.FreeRun:
		fmt.Fprintf(&b, "free run: target=%s strategy=%s seed=%d — %d log lines, %d observables, %d candidate sites",
			ev.Target, ev.Strategy, ev.Seed, ev.LogLines, len(ev.Observables), len(ev.Sites))
		for _, s := range ev.Sites {
			fmt.Fprintf(&b, "\n  site %-45s %d instances", s.Site, s.Instances)
		}
	case trace.RoundStart:
		fmt.Fprintf(&b, "round %3d: window=%d", ev.Round, ev.Window)
		if ev.RootRank > 0 {
			fmt.Fprintf(&b, " rank(root)=%d", ev.RootRank)
		}
		for i, s := range ev.Top {
			fmt.Fprintf(&b, "\n  #%d %-45s F=%v tried=%d", i+1, s.Site, float64(s.F), s.Tried)
			if s.BestObs != "" {
				fmt.Fprintf(&b, " via %q", clip(s.BestObs, 50))
			}
		}
	case trace.Decision:
		fmt.Fprintf(&b, "round %3d: decide over %d candidates (window=%d, budget=%d):",
			ev.Round, ev.CandidateCount, ev.Window, ev.Budget)
		for _, c := range ev.Candidates {
			fmt.Fprintf(&b, " %s", candidateRef(c))
		}
		if ev.CandidateCount > len(ev.Candidates) {
			fmt.Fprintf(&b, " … (+%d more)", ev.CandidateCount-len(ev.Candidates))
		}
	case trace.Injected:
		verdict := "oracle not satisfied"
		if ev.Satisfied {
			verdict = "ORACLE SATISFIED"
		}
		fmt.Fprintf(&b, "round %3d: injected %s#%d", ev.Round, ev.Site, ev.Occ)
		if ev.Path != "" {
			fmt.Fprintf(&b, " at path %s", ev.Path)
		}
		fmt.Fprintf(&b, " — %s", verdict)
	case trace.PairInjected:
		verdict := "oracle not satisfied"
		if ev.Satisfied {
			verdict = "ORACLE SATISFIED"
		}
		fmt.Fprintf(&b, "round %3d: injected pair %s#%d", ev.Round, ev.Site, ev.Occ)
		for i, m := range ev.Members {
			sep := " ["
			if i > 0 {
				sep = " + "
			}
			fmt.Fprintf(&b, "%s%s", sep, candidateRef(m))
		}
		if len(ev.Members) > 0 {
			b.WriteString("]")
		}
		fmt.Fprintf(&b, " — %s", verdict)
	case trace.EnvInjected:
		verdict := "oracle not satisfied"
		if ev.Satisfied {
			verdict = "ORACLE SATISFIED"
		}
		subject := ev.Subject
		if ev.Peer != "" {
			subject += "/" + ev.Peer
		}
		fmt.Fprintf(&b, "round %3d: injected env %s on %s (%s#%d", ev.Round, ev.Class, subject, ev.Site, ev.Occ)
		if ev.Dur > 0 {
			fmt.Fprintf(&b, ", %dms", ev.Dur/1_000_000)
		}
		fmt.Fprintf(&b, ") — %s", verdict)
	case trace.WindowGrow:
		fmt.Fprintf(&b, "round %3d: no candidate occurred; window %d -> %d", ev.Round, ev.From, ev.To)
		if ev.Clamped {
			b.WriteString(" (clamped to fault space)")
		}
	case trace.Feedback:
		fmt.Fprintf(&b, "round %3d: feedback — %d observables still missing, %d priorities adjusted",
			ev.Round, ev.Missing, len(ev.Bumped))
		for _, o := range ev.Bumped {
			fmt.Fprintf(&b, "\n  I[%s] -> %d", clip(o.Obs, 60), o.Priority)
		}
		for _, d := range ev.Deltas {
			fmt.Fprintf(&b, "\n  F[%s] %v -> %v", d.Site, float64(d.Before), float64(d.After))
		}
	case trace.Inconclusive:
		fmt.Fprintf(&b, "round %3d: inconclusive — %s", ev.Round, ev.Class)
		if ev.Site != "" {
			fmt.Fprintf(&b, " after injecting %s#%d", ev.Site, ev.Occ)
		}
		if ev.Seed != 0 {
			fmt.Fprintf(&b, " trial-seed=%d", ev.Seed)
		}
		if ev.Actor != "" {
			fmt.Fprintf(&b, " actor=%s", ev.Actor)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, " (%s)", clip(ev.Detail, 80))
		}
	case trace.Outcome:
		fmt.Fprintf(&b, "outcome: reproduced=%v rounds=%d reason=%s", ev.Reproduced, ev.Rounds, ev.Reason)
		if ev.Reproduced {
			fmt.Fprintf(&b, " script=%s#%d seed=%d", ev.Site, ev.Occ, ev.ScriptSeed)
		}
		if ev.RootRank > 0 {
			fmt.Fprintf(&b, " final-rank(root)=%d", ev.RootRank)
		}
	default:
		return trace.Line(ev)
	}
	return b.String()
}

// candidateRef renders one window candidate or pair member: its canonical
// path under path addressing, site#occ otherwise.
func candidateRef(c trace.Candidate) string {
	if c.Path != "" {
		return c.Path
	}
	return fmt.Sprintf("%s#%d", c.Site, c.Occ)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func printStats(s trace.Stats) {
	fmt.Printf("rounds:            %d\n", s.Rounds)
	fmt.Printf("injections:        %d\n", s.Injections)
	fmt.Printf("empty rounds:      %d (window doubled)\n", s.EmptyRound)
	fmt.Printf("inconclusive:      %d (trial failed after retry)\n", s.Inconclusive)
	fmt.Printf("reproduced:        %v\n", s.Reproduced)
	fmt.Printf("events by type:\n")
	for _, k := range sortedKeys(s.Events) {
		fmt.Printf("  %-12s %d\n", k, s.Events[trace.EventType(k)])
	}
	fmt.Printf("window sizes (size: rounds):\n")
	for _, k := range sortedInts(s.WindowSizes) {
		fmt.Printf("  %4d: %d\n", k, s.WindowSizes[k])
	}
	fmt.Printf("decisions per round (candidates: rounds):\n")
	for _, k := range sortedInts(s.DecisionSz) {
		fmt.Printf("  %4d: %d\n", k, s.DecisionSz[k])
	}
	fmt.Printf("trials per site:\n")
	for _, k := range sortedKeys(s.SiteTrials) {
		fmt.Printf("  %-45s %d\n", k, s.SiteTrials[k])
	}
}

func sortedKeys[V any, K ~string](m map[K]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

func sortedInts[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
