// Command replay executes a reproduction script produced by
// `anduril -script-out` (workflow step 4.a): it re-runs the failure's
// workload with the scripted fault(s) injected deterministically, checks
// the oracle, and prints the failure log around the injection.
//
// Usage:
//
//	replay -failure f17 -script f17.json [-seed 1] [-tail 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anduril"
	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/logging"
)

func main() {
	var (
		failure = flag.String("failure", "", "dataset failure the script belongs to (f1..f22)")
		script  = flag.String("script", "", "reproduction script JSON (from anduril -script-out)")
		seed    = flag.Int64("seed", 1, "seed of the replay environment")
		tail    = flag.Int("tail", 15, "failure-log lines to print")
	)
	flag.Parse()
	if *failure == "" || *script == "" {
		fmt.Fprintln(os.Stderr, "replay: -failure and -script required")
		flag.Usage()
		os.Exit(2)
	}

	target, err := anduril.Dataset(*failure)
	if err != nil {
		fail(err)
	}
	data, err := os.ReadFile(*script)
	if err != nil {
		fail(err)
	}
	sf, err := core.LoadScript(data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("replaying %s (%s) with %d scripted fault(s):\n", target.ID, target.Issue, len(sf.Faults))
	for _, f := range sf.Faults {
		fmt.Printf("  %s at occurrence %d\n", f.Site, f.Occurrence)
	}

	res := cluster.Execute(*seed, sf.Plan(), false, target.Workload, target.Horizon)
	satisfied := target.Oracle.Satisfied(res)
	fmt.Printf("oracle %q satisfied: %v\n", target.Oracle.Name, satisfied)
	if len(res.Blocked) > 0 {
		fmt.Printf("stuck threads: %s\n", strings.Join(res.Blocked, ", "))
	}

	var warns []logging.Entry
	for _, e := range res.Entries {
		if e.Level >= logging.Warn {
			warns = append(warns, e)
		}
	}
	if len(warns) > *tail {
		warns = warns[len(warns)-*tail:]
	}
	fmt.Printf("\nlast %d warning/error lines of the replayed log:\n", len(warns))
	for _, e := range warns {
		fmt.Printf("  [%s] %s %s\n", e.Thread, e.Level, e.Msg)
	}

	if !satisfied {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "replay: %v\n", err)
	os.Exit(1)
}
