// Multifault demonstrates the iterative extension for failures caused by
// TWO causally-independent faults — beyond the paper's single-fault scope
// (§6 limitation 2, automated per the iterative usage §3 sketches).
//
// The toy service dies only when a store-scrub fault leaves it degraded
// AND a peer-ping flake hits inside the degraded window. Single-fault
// search exhausts its space; the iterative mode bakes the best partial
// fault into the workload and finds the second.
//
//	go run ./examples/multifault
package main

import (
	"fmt"
	"log"

	"anduril"
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/sys/toy"
)

func main() {
	orc := anduril.LogContains("service entered unrecoverable state")

	// "Production": both faults hit in the same window.
	prodPlan := inject.Multi(
		inject.Exact(inject.Instance{Site: "toy.scrub-store", Occurrence: 2}),
		inject.Exact(inject.Instance{Site: "toy.ping-peer", Occurrence: 2}),
	)
	prod := cluster.Execute(9999, prodPlan, false, toy.Workload, toy.Horizon)
	if !orc.Satisfied(prod) {
		log.Fatal("the two-fault incident did not trigger")
	}

	target, err := anduril.NewTarget("toy-two-fault", toy.Workload, toy.Horizon,
		orc, prod.RenderLog(), []string{"internal/sys/toy"})
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1 (single fault) fails — the paper's algorithm by design
	// handles one root-cause fault per failure.
	single := anduril.Reproduce(target, anduril.Options{Seed: 1, MaxRounds: 100})
	fmt.Printf("single-fault search: reproduced=%v after %d rounds\n", single.Reproduced, single.Rounds)
	if single.BestPartial != nil {
		fmt.Printf("  best partial fault: %s#%d (%d observables still missing)\n",
			single.BestPartial.Site, single.BestPartial.Occurrence, single.BestPartialMissing)
	}

	// The iterative mode bakes the partial in and searches again.
	iter := anduril.ReproduceIterative(target, anduril.Options{Seed: 1, MaxRounds: 100}, 2)
	if !iter.Reproduced {
		log.Fatalf("iterative search failed after %d passes", len(iter.Reports))
	}
	fmt.Printf("iterative search: reproduced with %d faults:\n", len(iter.Scripts))
	for i, s := range iter.Scripts {
		fmt.Printf("  fault %d: %s at occurrence %d\n", i+1, s.Site, s.Occurrence)
	}
	if anduril.VerifyMulti(target, iter.Scripts, 4242) {
		fmt.Println("combined script verified: deterministic replay reproduces the failure")
	}
}
