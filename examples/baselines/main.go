// Baselines compares ANDURIL's full feedback algorithm against the
// ablation variants and the coverage-oriented baselines on one failure —
// a single-row slice of the paper's Table 2.
//
//	go run ./examples/baselines [failure-id]
package main

import (
	"fmt"
	"log"
	"os"

	"anduril"
)

func main() {
	id := "f16" // HB-16144, the paper's hardest case
	if len(os.Args) > 1 {
		id = os.Args[1]
	}
	target, err := anduril.Dataset(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure: %s (%s) — %s\n\n", target.ID, target.Issue, target.Description)
	fmt.Printf("%-22s %8s %10s %8s\n", "strategy", "rounds", "time", "found")

	strategies := []anduril.Strategy{
		anduril.FullFeedback, anduril.Exhaustive, anduril.SiteDistance,
		anduril.SiteDistanceLimit, anduril.SiteFeedback, anduril.MultiplyFeedback,
		anduril.FATE, anduril.CrashTuner, anduril.StackTrace, anduril.Random,
	}
	for _, s := range strategies {
		report := anduril.Reproduce(target, anduril.Options{
			Strategy: s, Seed: 1, MaxRounds: 500,
		})
		rounds, found := "-", "no"
		if report.Reproduced {
			rounds = fmt.Sprint(report.Rounds)
			found = fmt.Sprintf("%s#%d", report.Script.Site, report.Script.Occurrence)
		}
		fmt.Printf("%-22s %8s %9.0fms %8s\n", s, rounds, report.Elapsed.Seconds()*1000, found)
	}
}
