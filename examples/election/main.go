// Election demonstrates driving a target system directly on the simulated
// substrate: boot the ZooKeeper-like ensemble, watch a healthy election,
// then inject the ZK-4203 fault by hand and watch the election wedge.
// This is the layer ANDURIL's explorer automates.
//
//	go run ./examples/election
package main

import (
	"fmt"
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/sys/zk"
)

func main() {
	fmt.Println("=== healthy election ===")
	free := cluster.Execute(7, nil, true, zk.WorkloadElection, zk.Horizon)
	printInteresting(free, 8)
	fmt.Printf("fault sites exercised: %d distinct, %d total reaches\n\n",
		len(free.Counts), totalReaches(free))

	// Find the first election connection accepted by the would-be leader
	// (zk3) in the trace — the root-cause instance of ZK-4203.
	var root inject.Instance
	occ := 0
	for _, ev := range free.Trace {
		if ev.Site == "zk.election.accept-connection" {
			occ++
			if strings.HasPrefix(ev.Thread, "zk3-") {
				root = inject.Instance{Site: ev.Site, Occurrence: ev.Occurrence}
				break
			}
		}
	}
	fmt.Printf("=== injecting %s at occurrence %d (on zk3, before it tallies a quorum) ===\n",
		root.Site, root.Occurrence)
	broken := cluster.Execute(7, inject.Exact(root), false, zk.WorkloadElection, zk.Horizon)
	printInteresting(broken, 10)
	fmt.Printf("leader ever served: %v — the election is stuck forever, as in ZK-4203\n",
		broken.LogContains("Leader is serving epoch"))
}

func printInteresting(r *cluster.Result, n int) {
	shown := 0
	for _, e := range r.Entries {
		if e.Level < 1 { // skip debug
			continue
		}
		fmt.Printf("  [%s] %s\n", e.Thread, e.Msg)
		shown++
		if shown >= n {
			fmt.Printf("  ... (%d more lines)\n", len(r.Entries)-shown)
			break
		}
	}
}

func totalReaches(r *cluster.Result) int {
	total := 0
	for _, n := range r.Counts {
		total += n
	}
	return total
}
