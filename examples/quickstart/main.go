// Quickstart: reproduce one real-world failure from the dataset with the
// default full-feedback explorer, then verify the resulting script.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anduril"
)

func main() {
	// ZK-4203: the leader election gets stuck forever because an I/O error
	// killed the election connection manager on the would-be leader.
	target, err := anduril.Dataset("f3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %s (%s) — %s\n", target.ID, target.Issue, target.Description)

	report := anduril.Reproduce(target, anduril.Options{Seed: 1})
	if !report.Reproduced {
		log.Fatalf("not reproduced after %d rounds", report.Rounds)
	}

	fmt.Printf("reproduced in %d rounds (%.0f ms wall time)\n",
		report.Rounds, report.Elapsed.Seconds()*1000)
	fmt.Printf("relevant observables: %d, candidate sites: %d, candidate instances: %d\n",
		report.RelevantObservables, report.CandidateSites, report.CandidateInstances)
	fmt.Println(anduril.Script(report))

	// The script replays deterministically under the reproducing round's
	// seed (occurrence numbering is environment-specific, §5.2.5).
	if anduril.Verify(target, *report.Script, report.ScriptSeed) {
		fmt.Println("verified: deterministic replay reproduces the failure")
	}
}
