// Walstuck walks through the paper's motivating example (HB-25905, §2.1)
// end to end, assembling the reproduction target by hand the way a user
// would: a driving workload, a failure oracle encoding the user-visible
// symptoms, and a production failure log — here obtained by simulating the
// production incident once.
//
//	go run ./examples/walstuck
package main

import (
	"fmt"
	"log"

	"anduril"
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/sys/tablestore"
)

func main() {
	// The workload: a steady put stream against one region server, the
	// analog of HBase's TestReplicationSmallTests the paper reuses.
	workload := tablestore.WorkloadWAL

	// The oracle encodes exactly what the user reported: a timeout warning
	// while flushing ("Failed to get sync result") and a stack trace with
	// the log roller stuck at waitForSafePoint.
	orc := anduril.OracleAnd(
		anduril.LogContains("Failed to get sync result"),
		anduril.ThreadStuck("waitForSafePoint"),
	)

	// "Production": the incident happened because an HDFS stream write
	// broke at exactly the wrong moment. We replay it once to obtain the
	// log file a production cluster would have produced.
	prod := cluster.Execute(9999,
		inject.Exact(inject.Instance{Site: "ts.wal.stream-write", Occurrence: 12}),
		false, workload, tablestore.Horizon)
	if !orc.Satisfied(prod) {
		log.Fatal("the simulated production incident did not show the symptom")
	}
	failureLog := prod.RenderLog()
	fmt.Printf("production failure log: %d bytes\n", len(failureLog))

	// Assemble the target: the analyzer builds the static causal graph
	// from the tablestore source.
	target, err := anduril.NewTarget("walstuck", workload, tablestore.Horizon,
		orc, failureLog, []string{"internal/sys/tablestore"})
	if err != nil {
		log.Fatal(err)
	}

	// Search. The root-cause site is exercised hundreds of times per run;
	// only a handful of occurrences — a stream break just before a log
	// roll, with more unacked appends than one sync batch carries — wedge
	// the WAL consumer.
	report := anduril.Reproduce(target, anduril.Options{Seed: 42})
	if !report.Reproduced {
		log.Fatalf("not reproduced after %d rounds", report.Rounds)
	}
	fmt.Printf("reproduced in %d rounds out of %d candidate instances\n",
		report.Rounds, report.CandidateInstances)
	fmt.Println(anduril.Script(report))

	// Show the timing sensitivity the paper highlights: the same site at
	// occurrence 1 recovers cleanly via a writer roll.
	early := cluster.Execute(4242,
		inject.Exact(inject.Instance{Site: report.Script.Site, Occurrence: 1}),
		false, workload, tablestore.Horizon)
	fmt.Printf("same fault at occurrence 1: oracle satisfied = %v (the stream just rolls and recovers)\n",
		orc.Satisfied(early))
}
