package anduril_test

import (
	"fmt"

	"anduril"
)

// ExampleReproduce reproduces a dataset failure with the default
// full-feedback explorer.
func ExampleReproduce() {
	target, err := anduril.Dataset("f22") // C*-6415: snapshot repair blocks forever
	if err != nil {
		panic(err)
	}
	report := anduril.Reproduce(target, anduril.Options{Seed: 1})
	fmt.Println("reproduced:", report.Reproduced)
	fmt.Println("root cause:", report.Script.Site)
	// Output:
	// reproduced: true
	// root cause: cs.repair.make-snapshot
}

// ExampleVerify replays a reproduction script deterministically.
func ExampleVerify() {
	target, _ := anduril.Dataset("f19") // KA-9374: blocked connectors disable the worker
	report := anduril.Reproduce(target, anduril.Options{Seed: 1})
	ok := anduril.Verify(target, *report.Script, report.ScriptSeed)
	fmt.Println("script verifies:", ok)
	// Output:
	// script verifies: true
}

// ExampleDatasetCatalog lists part of the 22-failure dataset.
func ExampleDatasetCatalog() {
	for _, info := range anduril.DatasetCatalog()[:3] {
		fmt.Printf("%s %s (%s)\n", info.ID, info.Issue, info.System)
	}
	// Output:
	// f1 ZK-2247 (zk)
	// f2 ZK-3157 (zk)
	// f3 ZK-4203 (zk)
}

// ExampleReproduce_strategy runs a comparison baseline instead of the full
// feedback algorithm.
func ExampleReproduce_strategy() {
	target, _ := anduril.Dataset("f16") // HB-16144: orphaned replication-queue lock
	report := anduril.Reproduce(target, anduril.Options{
		Strategy:  anduril.CrashTuner,
		Seed:      1,
		MaxRounds: 100,
	})
	fmt.Println("crashtuner reproduced:", report.Reproduced)
	// Output:
	// crashtuner reproduced: false
}
