#!/usr/bin/env bash
# Crash gate for the reproduction daemon: submit a soak set, then
# repeatedly SIGKILL the daemon mid-execution and restart it on the same
# journal, and finally verify the complete set. `andurilctl soak
# -verify-only` re-derives the identical job set from the seed, so the
# final phase detects lost jobs (missing from /jobs), duplicated jobs
# (extra entries or wrong submission counts), and any divergence from a
# serial run (canonical report bytes and trace bytes must match exactly).
#
# -checkpoint-every 1 maximizes the surface: every round boundary is a
# checkpoint write the kill can land inside. The kill offsets are a fixed
# stagger, not random — CI must be reproducible — but they drift against
# the search cadence, so successive kills land at different points of the
# journal/checkpoint/trace write sequence.
#
# Tunables (env): JOBS (default 300), DISTINCT (25), SEED (7),
# KILLS (6), ADDR (127.0.0.1:18478).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-300}"
DISTINCT="${DISTINCT:-25}"
SEED="${SEED:-7}"
KILLS="${KILLS:-6}"
ADDR="${ADDR:-127.0.0.1:18478}"

BIN="$(mktemp -d)"
DATA="$(mktemp -d)"
LOG="$BIN/server.log"

go build -o "$BIN/anduril-server" ./cmd/anduril-server
go build -o "$BIN/andurilctl" ./cmd/andurilctl

cleanup() {
  [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "server_crash: $1; daemon log:" >&2
  cat "$LOG" >&2
  exit 1
}

start_daemon() {
  "$BIN/anduril-server" -data-dir "$DATA" -addr "$ADDR" \
    -checkpoint-every 1 >>"$LOG" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    if "$BIN/andurilctl" health -server "http://$ADDR" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      fail "daemon died during startup"
    fi
    sleep 0.1
  done
  fail "daemon never became ready"
}

start_daemon
"$BIN/andurilctl" soak -server "http://$ADDR" \
  -jobs "$JOBS" -distinct "$DISTINCT" -seed "$SEED" -submit-only \
  || fail "submit phase failed"

# Kill -9 at staggered offsets while the backlog executes. Each restart
# must re-admit every unfinished job from the journal.
for i in $(seq 1 "$KILLS"); do
  sleep "$(( (i * 3) % 5 + 1 ))"
  kill -9 "$SRV_PID" 2>/dev/null || true
  wait "$SRV_PID" 2>/dev/null || true
  echo "server_crash: kill #$i done, restarting"
  start_daemon
done

"$BIN/andurilctl" soak -server "http://$ADDR" \
  -jobs "$JOBS" -distinct "$DISTINCT" -seed "$SEED" -verify-only -timeout 20m \
  || fail "verify phase failed"

kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "final drain exited nonzero"
SRV_PID=""
echo "server_crash: OK ($KILLS kills survived, $JOBS submissions verified)"
