#!/usr/bin/env bash
# Soak gate for the reproduction daemon: start anduril-server on a fresh
# journal, push a large mixed job set through it via `andurilctl soak`
# (many submissions fanned over fewer distinct specs, so dedupe is
# exercised at scale), and let the ctl verify every finished job against
# an in-process serial run — state, submission counts, canonical report
# bytes and trace bytes must all match exactly. Finishes with a SIGTERM
# drain, which must exit 0.
#
# Tunables (env): JOBS (default 1000), DISTINCT (40), SEED (1),
# ADDR (127.0.0.1:18477).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-1000}"
DISTINCT="${DISTINCT:-40}"
SEED="${SEED:-1}"
ADDR="${ADDR:-127.0.0.1:18477}"

BIN="$(mktemp -d)"
DATA="$(mktemp -d)"
LOG="$BIN/server.log"

go build -o "$BIN/anduril-server" ./cmd/anduril-server
go build -o "$BIN/andurilctl" ./cmd/andurilctl

cleanup() {
  [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
}
trap cleanup EXIT

"$BIN/anduril-server" -data-dir "$DATA" -addr "$ADDR" >"$LOG" 2>&1 &
SRV_PID=$!

# Wait for readiness; dump the daemon log if it never comes up.
for _ in $(seq 1 100); do
  if "$BIN/andurilctl" health -server "http://$ADDR" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    echo "server_soak: daemon died during startup" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done

if ! "$BIN/andurilctl" soak -server "http://$ADDR" \
  -jobs "$JOBS" -distinct "$DISTINCT" -seed "$SEED" -timeout 20m; then
  echo "server_soak: soak failed; daemon log:" >&2
  cat "$LOG" >&2
  exit 1
fi

# Graceful drain must be clean (exit 0).
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
  echo "server_soak: drain exited nonzero; daemon log:" >&2
  cat "$LOG" >&2
  exit 1
fi
SRV_PID=""
echo "server_soak: OK ($JOBS submissions over $DISTINCT specs)"
